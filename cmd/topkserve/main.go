// Command topkserve is a sharded concurrent query service for top-k-list
// similarity search: it partitions a ranking collection across S sub-indices
// (one per core by default), fans every query out to all shards in parallel,
// and serves exact range queries over HTTP.
//
// Usage:
//
//	topkgen -preset nyt -n 50000 | topkserve -data - -index coarse
//	topkserve -load-snapshot rankings.bin -index blocked-drop -shards 8
//
// Endpoints:
//
//	POST /search   {"query":[1,2,3],"theta":0.2}            single query
//	               {"queries":[[1,2,3],[4,5,6]],"theta":0.2} batch
//	POST /insert   {"ranking":[1,2,3]}          add a ranking, returns its id
//	POST /delete   {"id":7}                     remove a ranking
//	POST /update   {"id":7,"ranking":[3,2,1]}   replace a ranking, id stable
//	GET  /snapshot binary persist-v2 snapshot of the live collection
//	GET  /stats    live collection size, per-shard Len/Tombstones/
//	               DistanceCalls/latency histograms
//	GET  /healthz  liveness probe
//
// Mutations are supported by the mutable index kinds (coarse*, inverted*,
// merge); the read-only kinds (blocked*, bktree, mtree, vptree) serve
// search traffic only and reject mutations with 400. GET /snapshot saved to
// a file and passed back via -load-snapshot reloads with all ids preserved
// — tombstoned ids stay retired; v1 snapshots load as all-live collections.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"topk"
	"topk/internal/persist"
	"topk/internal/ranking"
	"topk/internal/shard"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dataPath = flag.String("data", "", "collection path (- = stdin), one ranking per line")
		snapPath = flag.String("load-snapshot", "", "binary collection snapshot (see topkgen -format binary / topkquery -save-snapshot)")
		kind     = flag.String("index", "coarse", "coarse|coarse-drop|inverted|inverted-drop|merge|blocked|blocked-drop|bktree|mtree|vptree")
		shards   = flag.Int("shards", 0, "number of shards (0 = GOMAXPROCS)")
		maxTheta = flag.Float64("maxtheta", 0.3, "auto-tune target threshold for the coarse index")
	)
	flag.Parse()

	rankings, err := loadCollection(*dataPath, *snapPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !mutableKind(*kind) {
		// Read-only kinds cannot represent retired ids: compact any
		// tombstoned snapshot slots away and renumber densely.
		if compacted, dropped := dropTombstones(rankings); dropped > 0 {
			fmt.Fprintf(os.Stderr, "index kind %q is read-only: compacted %d tombstoned slots (ids renumbered)\n",
				*kind, dropped)
			rankings = compacted
		}
	}
	start := time.Now()
	sh, err := shard.New(rankings, *shards, builderFor(*kind, *maxTheta))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "indexed %d rankings (k=%d) as %d %s shards in %v\n",
		sh.Len(), sh.K(), sh.NumShards(), *kind, time.Since(start).Round(time.Millisecond))

	srv := &http.Server{Addr: *addr, Handler: newServer(sh, *kind).routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()
	fmt.Fprintf(os.Stderr, "listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// loadCollection reads the collection either from a text file of rankings or
// from a persist snapshot; exactly one source must be given.
func loadCollection(dataPath, snapPath string) ([]ranking.Ranking, error) {
	switch {
	case dataPath != "" && snapPath != "":
		return nil, fmt.Errorf("pass either -data or -load-snapshot, not both")
	case snapPath != "":
		f, err := os.Open(snapPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// Version-aware: v1 snapshots load as all-live collections, v2
		// snapshots restore tombstoned slots as nil entries.
		return persist.ReadCollection(f)
	case dataPath != "":
		var r io.Reader
		if dataPath == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(dataPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		var out []ranking.Ranking
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			rk, err := topk.ParseRanking(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", len(out)+1, err)
			}
			out = append(out, rk)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("missing -data or -load-snapshot")
	}
}

// mutableKind reports whether an index kind supports Insert/Delete/Update.
func mutableKind(kind string) bool {
	switch kind {
	case "coarse", "coarse-drop", "inverted", "inverted-drop", "merge":
		return true
	}
	return false
}

// dropTombstones removes nil (tombstoned) slots, renumbering densely.
func dropTombstones(slots []ranking.Ranking) ([]ranking.Ranking, int) {
	out := make([]ranking.Ranking, 0, len(slots))
	for _, r := range slots {
		if r != nil {
			out = append(out, r)
		}
	}
	return out, len(slots) - len(out)
}

// builderFor returns the shard builder for an index kind name. Mutable
// kinds build from slots so that tombstoned snapshot entries keep their ids
// retired; read-only kinds require a dense collection (see dropTombstones).
func builderFor(kind string, maxTheta float64) shard.Builder {
	return func(rs []ranking.Ranking) (shard.Index, error) {
		switch kind {
		case "coarse":
			return topk.NewCoarseIndexFromSlots(rs, topk.WithAutoTune(maxTheta))
		case "coarse-drop":
			return topk.NewCoarseIndexFromSlots(rs, topk.WithThetaC(0.06), topk.WithListDropping())
		case "inverted":
			return topk.NewInvertedIndexFromSlots(rs, topk.WithAlgorithm(topk.FilterValidate))
		case "inverted-drop":
			return topk.NewInvertedIndexFromSlots(rs)
		case "merge":
			return topk.NewInvertedIndexFromSlots(rs, topk.WithAlgorithm(topk.ListMerge))
		case "blocked":
			return topk.NewBlockedIndex(rs)
		case "blocked-drop":
			return topk.NewBlockedIndex(rs, topk.WithBlockedDrop())
		case "bktree":
			return topk.NewMetricTree(rs, topk.BKTree)
		case "mtree":
			return topk.NewMetricTree(rs, topk.MTree)
		case "vptree":
			return topk.NewMetricTree(rs, topk.VPTree)
		default:
			return nil, fmt.Errorf("unknown index kind %q", kind)
		}
	}
}

// server holds the shared sharded index and request counters.
type server struct {
	sh        *shard.Sharded
	kind      string
	started   time.Time
	queries   atomic.Uint64
	mutations atomic.Uint64
}

func newServer(sh *shard.Sharded, kind string) *server {
	return &server{sh: sh, kind: kind, started: time.Now()}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("POST /insert", s.handleInsert)
	mux.HandleFunc("POST /delete", s.handleDelete)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleSnapshot streams the current collection as a persist v2 snapshot:
// the external-id slot array with tombstones marked, so restarting with
// -load-snapshot preserves every id. `curl -s :8080/snapshot > snap.bin`.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	slots, ok := s.sh.Slots()
	if !ok {
		httpError(w, http.StatusBadRequest, "index kind %q exposes no snapshot view", s.kind)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=\"rankings-v2.bin\"")
	if _, err := persist.WriteCollection(w, slots); err != nil {
		// Headers are gone; all we can do is log.
		fmt.Fprintf(os.Stderr, "snapshot write: %v\n", err)
	}
}

// searchRequest is the /search payload: exactly one of Query or Queries.
type searchRequest struct {
	Query   ranking.Ranking   `json:"query,omitempty"`
	Queries []ranking.Ranking `json:"queries,omitempty"`
	Theta   float64           `json:"theta"`
}

// resultJSON augments a raw result with its normalized distance.
type resultJSON struct {
	ID       ranking.ID `json:"id"`
	Dist     int        `json:"dist"`
	NormDist float64    `json:"normDist"`
}

type answerJSON struct {
	Count   int          `json:"count"`
	Results []resultJSON `json:"results"`
}

type searchResponse struct {
	TookMicros int64        `json:"tookMicros"`
	Count      int          `json:"count,omitempty"`
	Results    []resultJSON `json:"results,omitempty"`
	Answers    []answerJSON `json:"answers,omitempty"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if (req.Query == nil) == (req.Queries == nil) {
		httpError(w, http.StatusBadRequest, "pass exactly one of \"query\" or \"queries\"")
		return
	}
	if req.Theta < 0 || req.Theta > 1 {
		httpError(w, http.StatusBadRequest, "theta %v outside [0,1]", req.Theta)
		return
	}
	queries := req.Queries
	if req.Query != nil {
		queries = []ranking.Ranking{req.Query}
	}
	for i, q := range queries {
		if q.K() != s.sh.K() {
			httpError(w, http.StatusBadRequest, "query %d has size %d, index has k=%d", i, q.K(), s.sh.K())
			return
		}
		if err := q.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
	}

	start := time.Now()
	answers, err := s.sh.SearchBatch(queries, req.Theta)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "search: %v", err)
		return
	}
	s.queries.Add(uint64(len(queries)))
	resp := searchResponse{TookMicros: time.Since(start).Microseconds()}
	if req.Query != nil {
		resp.Count = len(answers[0])
		resp.Results = s.toJSON(answers[0])
	} else {
		resp.Answers = make([]answerJSON, len(answers))
		for i, a := range answers {
			resp.Answers[i] = answerJSON{Count: len(a), Results: s.toJSON(a)}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) toJSON(rs []ranking.Result) []resultJSON {
	dmax := float64(topk.MaxDistance(s.sh.K()))
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON{ID: r.ID, Dist: r.Dist, NormDist: float64(r.Dist) / dmax}
	}
	return out
}

// mutateRequest is the payload of /insert, /delete and /update. ID is a
// pointer so a missing field is distinguishable from id 0.
type mutateRequest struct {
	ID      *ranking.ID     `json:"id,omitempty"`
	Ranking ranking.Ranking `json:"ranking,omitempty"`
}

type mutateResponse struct {
	ID ranking.ID `json:"id"`
	N  int        `json:"n"`
}

// decodeMutation parses and bounds a mutation body; a false return means an
// error response was already written.
func (s *server) decodeMutation(w http.ResponseWriter, r *http.Request) (mutateRequest, bool) {
	var req mutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return req, false
	}
	if !s.sh.Mutable() {
		httpError(w, http.StatusBadRequest, "index kind %q does not support mutation", s.kind)
		return req, false
	}
	return req, true
}

// checkRanking validates a mutation payload ranking against the index.
func (s *server) checkRanking(w http.ResponseWriter, rk ranking.Ranking) bool {
	if rk == nil {
		httpError(w, http.StatusBadRequest, "missing \"ranking\"")
		return false
	}
	if rk.K() != s.sh.K() {
		httpError(w, http.StatusBadRequest, "ranking has size %d, index has k=%d", rk.K(), s.sh.K())
		return false
	}
	if err := rk.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return false
	}
	return true
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeMutation(w, r)
	if !ok {
		return
	}
	if req.ID != nil {
		httpError(w, http.StatusBadRequest, "\"id\" is not an insert field (use /update to replace)")
		return
	}
	if !s.checkRanking(w, req.Ranking) {
		return
	}
	id, err := s.sh.Insert(req.Ranking)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "insert: %v", err)
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, mutateResponse{ID: id, N: s.sh.Len()})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeMutation(w, r)
	if !ok {
		return
	}
	if req.ID == nil {
		httpError(w, http.StatusBadRequest, "missing \"id\"")
		return
	}
	if req.Ranking != nil {
		httpError(w, http.StatusBadRequest, "\"ranking\" is not a delete field")
		return
	}
	if err := s.sh.Delete(*req.ID); err != nil {
		if errors.Is(err, topk.ErrUnknownID) {
			httpError(w, http.StatusNotFound, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "delete: %v", err)
		}
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, mutateResponse{ID: *req.ID, N: s.sh.Len()})
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeMutation(w, r)
	if !ok {
		return
	}
	if req.ID == nil {
		httpError(w, http.StatusBadRequest, "missing \"id\"")
		return
	}
	if !s.checkRanking(w, req.Ranking) {
		return
	}
	if err := s.sh.Update(*req.ID, req.Ranking); err != nil {
		if errors.Is(err, topk.ErrUnknownID) {
			httpError(w, http.StatusNotFound, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "update: %v", err)
		}
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, mutateResponse{ID: *req.ID, N: s.sh.Len()})
}

type statsResponse struct {
	Index         string             `json:"index"`
	N             int                `json:"n"`
	K             int                `json:"k"`
	NumShards     int                `json:"numShards"`
	Mutable       bool               `json:"mutable"`
	Queries       uint64             `json:"queries"`
	Mutations     uint64             `json:"mutations"`
	DistanceCalls uint64             `json:"distanceCalls"`
	UptimeSeconds float64            `json:"uptimeSeconds"`
	Shards        []shard.ShardStats `json:"shards"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Index:         s.kind,
		N:             s.sh.Len(),
		K:             s.sh.K(),
		NumShards:     s.sh.NumShards(),
		Mutable:       s.sh.Mutable(),
		Queries:       s.queries.Load(),
		Mutations:     s.mutations.Load(),
		DistanceCalls: s.sh.DistanceCalls(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Shards:        s.sh.Stats(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
