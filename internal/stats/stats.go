// Package stats provides the statistical substrate the cost model and the
// evaluation harness rely on: empirical distance distributions (CDFs),
// generalized harmonic numbers and Zipf fitting for item popularity, and
// the intrinsic dimensionality ρ = μ²/(2σ²) of Chávez et al. that the
// paper uses to explain why metric trees struggle on this workload
// (both datasets measure ρ ≈ 13).
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"topk/internal/ranking"
)

// ECDF is an empirical cumulative distribution function over integer
// distances.
type ECDF struct {
	sorted []int
}

// NewECDF builds an ECDF from samples (copied; the input is not modified).
func NewECDF(samples []int) *ECDF {
	s := make([]int, len(samples))
	copy(s, samples)
	sort.Ints(s)
	return &ECDF{sorted: s}
}

// P returns P[X ≤ x].
func (e *ECDF) P(x int) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Count of samples ≤ x.
	n := sort.SearchInts(e.sorted, x+1)
	return float64(n) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the samples.
func (e *ECDF) Quantile(q float64) int {
	if len(e.sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(e.sorted)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(e.sorted) {
		i = len(e.sorted) - 1
	}
	return e.sorted[i]
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }

// Mean returns the sample mean.
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, v := range e.sorted {
		sum += float64(v)
	}
	return sum / float64(len(e.sorted))
}

// Variance returns the (population) sample variance.
func (e *ECDF) Variance() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	mu := e.Mean()
	var s float64
	for _, v := range e.sorted {
		d := float64(v) - mu
		s += d * d
	}
	return s / float64(len(e.sorted))
}

// IntrinsicDimensionality returns ρ = μ²/(2σ²) (Chávez, Navarro,
// Baeza-Yates, Marroquín 2001): the higher ρ, the more the pairwise
// distances concentrate and the harder metric pruning becomes.
func (e *ECDF) IntrinsicDimensionality() float64 {
	v := e.Variance()
	if v == 0 {
		return math.Inf(1)
	}
	mu := e.Mean()
	return mu * mu / (2 * v)
}

// SampleDistances estimates the pairwise Footrule distance distribution of
// a collection by sampling `pairs` random pairs (with replacement,
// excluding self-pairs when n > 1).
func SampleDistances(rankings []ranking.Ranking, pairs int, seed int64) *ECDF {
	n := len(rankings)
	if n < 2 || pairs <= 0 {
		return NewECDF(nil)
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]int, 0, pairs)
	for len(samples) < pairs {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		samples = append(samples, ranking.Footrule(rankings[i], rankings[j]))
	}
	return NewECDF(samples)
}

// Harmonic returns the generalized harmonic number H_{v,s} = Σ_{i=1..v} i^{−s}.
func Harmonic(v int, s float64) float64 {
	var h float64
	for i := 1; i <= v; i++ {
		h += math.Pow(float64(i), -s)
	}
	return h
}

// HarmonicApprox approximates H_{v,s} by the Euler–Maclaurin integral form;
// it is used for very large v where the exact loop would dominate the cost
// model's own runtime. The error is far below the cost model's accuracy.
func HarmonicApprox(v int, s float64) float64 {
	if v <= 2048 {
		return Harmonic(v, s)
	}
	head := Harmonic(2048, s)
	// ∫_{2048}^{v} x^{−s} dx plus half the boundary correction.
	var tail float64
	if s == 1 {
		tail = math.Log(float64(v)) - math.Log(2048)
	} else {
		tail = (math.Pow(float64(v), 1-s) - math.Pow(2048, 1-s)) / (1 - s)
	}
	corr := (math.Pow(2048, -s) + math.Pow(float64(v), -s)) / 2
	return head + tail - math.Pow(2048, -s) + corr
}

// ZipfFrequency returns f(i; s, v) = 1/(i^s · H_{v,s}), the relative
// frequency of the i-th most popular item under Zipf's law (i is 1-based).
func ZipfFrequency(i int, s float64, v int, hvs float64) float64 {
	return 1 / (math.Pow(float64(i), s) * hvs)
}

// ItemFrequencies counts how many rankings contain each item and returns
// the counts sorted descending (the rank-frequency curve).
func ItemFrequencies(rankings []ranking.Ranking) []int {
	counts := make(map[ranking.Item]int)
	for _, r := range rankings {
		for _, it := range r {
			counts[it]++
		}
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	return freqs
}

// FitZipf estimates the Zipf skew parameter s of a descending
// rank-frequency curve by least-squares regression of log f against log
// rank (the standard estimator; the paper reports s = 0.87 for NYT and
// s = 0.53 for Yago obtained the same way from samples).
func FitZipf(freqs []int) (s float64, err error) {
	if len(freqs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 frequencies, have %d", len(freqs))
	}
	var n float64
	var sumX, sumY, sumXX, sumXY float64
	for i, f := range freqs {
		if f <= 0 {
			continue
		}
		x := math.Log(float64(i + 1))
		y := math.Log(float64(f))
		sumX += x
		sumY += y
		sumXX += x * x
		sumXY += x * y
		n++
	}
	if n < 2 {
		return 0, fmt.Errorf("stats: not enough positive frequencies")
	}
	denom := n*sumXX - sumX*sumX
	if denom == 0 {
		return 0, fmt.Errorf("stats: degenerate rank-frequency curve")
	}
	slope := (n*sumXY - sumX*sumY) / denom
	return -slope, nil // log f = c − s·log rank
}

// FitZipfHead fits the Zipf parameter on only the `head` most frequent
// items. The full-curve OLS estimator is biased upward by the integer-count
// noise of the long tail (items observed once or twice); the head of the
// rank-frequency curve is where the power law is statistically reliable.
func FitZipfHead(freqs []int, head int) (float64, error) {
	if head < 2 {
		head = 2
	}
	if head > len(freqs) {
		head = len(freqs)
	}
	return FitZipf(freqs[:head])
}

// Histogram buckets integer samples into `buckets` equal-width bins over
// [min, max] and returns the bin counts; used by the stats CLI.
func Histogram(samples []int, buckets int) (counts []int, min, max int) {
	if len(samples) == 0 || buckets <= 0 {
		return nil, 0, 0
	}
	min, max = samples[0], samples[0]
	for _, s := range samples {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	counts = make([]int, buckets)
	span := max - min + 1
	for _, s := range samples {
		b := (s - min) * buckets / span
		counts[b]++
	}
	return counts, min, max
}

// Summary aggregates the descriptive statistics of a collection that the
// stats CLI prints and the cost model consumes.
type Summary struct {
	N             int     // number of rankings
	K             int     // ranking size
	DistinctItems int     // |D| observed
	ZipfS         float64 // fitted skew
	MeanDistance  float64
	IntrinsicDim  float64
	DuplicateRate float64 // fraction of rankings equal to an earlier one
}

// Summarize computes a Summary, sampling `pairs` distances.
func Summarize(rankings []ranking.Ranking, pairs int, seed int64) Summary {
	var sum Summary
	sum.N = len(rankings)
	if sum.N == 0 {
		return sum
	}
	sum.K = rankings[0].K()
	freqs := ItemFrequencies(rankings)
	sum.DistinctItems = len(freqs)
	if s, err := FitZipf(freqs); err == nil {
		sum.ZipfS = s
	}
	ecdf := SampleDistances(rankings, pairs, seed)
	sum.MeanDistance = ecdf.Mean()
	sum.IntrinsicDim = ecdf.IntrinsicDimensionality()
	seen := make(map[string]struct{}, sum.N)
	dups := 0
	for _, r := range rankings {
		key := fmt.Sprint(r)
		if _, ok := seen[key]; ok {
			dups++
		} else {
			seen[key] = struct{}{}
		}
	}
	sum.DuplicateRate = float64(dups) / float64(sum.N)
	return sum
}
