package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"topk"
	"topk/internal/dataset"
	"topk/internal/difftest"
	"topk/internal/ranking"
	"topk/internal/shard"
)

// TestHybridServe drives the hybrid kind end to end over HTTP: routed
// searches match a single-backend reference byte-for-byte, GET /stats
// exposes the aggregated per-backend plan counters, and the engine reports
// itself mutable.
func TestHybridServe(t *testing.T) {
	cfg := dataset.NYTLike(300, 10)
	rs, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := dataset.Workload(rs, cfg, 12, 0.8, cfg.Seed+1000)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(rs, 3, builderFor("hybrid", 0.3, "", 8, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(sh, "hybrid").routes()
	ref, err := topk.NewInvertedIndex(rs)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0, 0.1, 0.2, 0.3} {
		for _, q := range qs {
			rec := postSearch(t, h, map[string]any{"query": q, "theta": theta})
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
			var resp searchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			want, err := ref.Search(q, theta)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) != len(want) {
				t.Fatalf("θ=%.2f: %d results, want %d", theta, len(resp.Results), len(want))
			}
			for i, r := range resp.Results {
				if r.ID != want[i].ID || r.Dist != want[i].Dist {
					t.Fatalf("θ=%.2f result %d: got (%d,%d), want (%d,%d)",
						theta, i, r.ID, r.Dist, want[i].ID, want[i].Dist)
				}
			}
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Index != "hybrid" || !st.Mutable {
		t.Fatalf("implausible stats: %+v", st)
	}
	if len(st.Planner) == 0 {
		t.Fatal("hybrid stats missing planner scoreboard")
	}
	var plans uint64
	for _, b := range st.Planner {
		plans += b.Plans
		if b.Observations == 0 {
			t.Fatalf("backend %s has no observations despite calibration", b.Backend)
		}
	}
	// Every query fans out to all shards, and each shard's planner counts
	// its own plan.
	if want := uint64(4 * len(qs) * sh.NumShards()); plans != want {
		t.Fatalf("plan counters sum to %d, want %d", plans, want)
	}

	// The full write path over HTTP: insert (id continues the sequence),
	// search finds the new ranking at distance 0, update keeps the id,
	// delete retires it, and /stats reflects the delta overlay.
	rec = post(t, h, "/insert", `{"ranking":[901,902,903,904,905,906,907,908,909,910]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert on hybrid: status %d, want 200 (%s)", rec.Code, rec.Body)
	}
	var ins mutateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ins); err != nil {
		t.Fatal(err)
	}
	if ins.ID != 300 || ins.N != 301 {
		t.Fatalf("insert returned id=%d n=%d, want id=300 n=301", ins.ID, ins.N)
	}
	rec = postSearch(t, h, map[string]any{"query": []int{901, 902, 903, 904, 905, 906, 907, 908, 909, 910}, "theta": 0.0})
	var sr searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Count != 1 || sr.Results[0].ID != 300 || sr.Results[0].Dist != 0 {
		t.Fatalf("inserted ranking not found: %+v", sr)
	}
	if rec = post(t, h, "/update", `{"id":300,"ranking":[911,902,903,904,905,906,907,908,909,910]}`); rec.Code != http.StatusOK {
		t.Fatalf("update on hybrid: status %d (%s)", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	st = statsResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	// Insert + update land two delta entries on the last shard.
	if st.Delta != 2 || st.Mutations != 2 {
		t.Fatalf("delta counters after insert+update: delta=%d mutations=%d", st.Delta, st.Mutations)
	}
	if rec = post(t, h, "/delete", `{"id":300}`); rec.Code != http.StatusOK {
		t.Fatalf("delete on hybrid: status %d (%s)", rec.Code, rec.Body)
	}
	if rec = post(t, h, "/delete", `{"id":300}`); rec.Code != http.StatusNotFound {
		t.Fatalf("re-delete of retired id: status %d, want 404", rec.Code)
	}

	// GET /snapshot works for hybrid (slot view), and the forced-backend
	// flag builds a pinned engine.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/snapshot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot status %d", rec.Code)
	}
	forced, err := shard.New(rs, 2, builderFor("hybrid", 0.3, "coarse", 0, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	hf := newServer(forced, "hybrid").routes()
	postSearch(t, hf, map[string]any{"query": qs[0], "theta": 0.2})
	rec = httptest.NewRecorder()
	hf.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	st = statsResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	for _, b := range st.Planner {
		if b.Backend != "coarse" && b.Plans != 0 {
			t.Fatalf("forced engine planned %s: %+v", b.Backend, st.Planner)
		}
		if b.Backend == "coarse" && b.Plans == 0 {
			t.Fatal("forced backend saw no plans")
		}
	}
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestKNNEndpoint checks POST /knn against the brute-force oracle across
// the sharded fan-out, plus its validation contract.
func TestKNNEndpoint(t *testing.T) {
	srv, rs, qs := testServer(t)
	h := srv.routes()
	for _, q := range qs[:5] {
		rec := postJSON(t, h, "/knn", map[string]any{"query": q, "n": 7})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var resp knnResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(rs, q, 7)
		if resp.Count != len(want) {
			t.Fatalf("count %d, want %d", resp.Count, len(want))
		}
		for i, r := range resp.Results {
			if r.ID != want[i].ID || r.Dist != want[i].Dist {
				t.Fatalf("result %d: got (%d,%d), want (%d,%d)", i, r.ID, r.Dist, want[i].ID, want[i].Dist)
			}
		}
	}
	// n larger than the collection truncates to Len.
	rec := postJSON(t, h, "/knn", map[string]any{"query": qs[0], "n": 100000})
	var resp knnResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(rs) {
		t.Fatalf("oversized n returned %d results, want %d", resp.Count, len(rs))
	}

	for i, body := range []string{
		`{"n":5}`,                                      // missing query
		`{"query":[1,2,3],"n":5}`,                      // wrong k
		`{"query":[1,2,3,4,5,6,7,8,9,10],"n":0}`,       // n must be positive
		`{"query":[1,1,2,3,4,5,6,7,8,9],"n":5}`,        // duplicate items
		`{"query":[1,2,3,4,5,6,7,8,9,10],"n":5,"x":1}`, // unknown field
	} {
		if rec := post(t, h, "/knn", body); rec.Code != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400 (%s)", i, rec.Code, rec.Body)
		}
	}

	// KNN traffic shows up in /stats.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.KNNQueries != 6 {
		t.Fatalf("knnQueries %d, want 6", st.KNNQueries)
	}
}

// TestBatchModes checks the /search batch dispatch: uniform radii over a
// batch-capable kind take the shared-candidate path, mixed radii fall back
// to per-query search, and both agree with the single-query answers.
func TestBatchModes(t *testing.T) {
	rs, err := dataset.Generate(dataset.NYTLike(300, 10))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := dataset.Workload(rs, dataset.NYTLike(300, 10), 8, 0.8, 7)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(rs, 3, builderFor("inverted-drop", 0.3, "", 0, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(sh, "inverted-drop").routes()

	single := func(q ranking.Ranking, theta float64) []resultJSON {
		rec := postSearch(t, h, map[string]any{"query": q, "theta": theta})
		var resp searchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Results
	}

	// Uniform batch → shared mode.
	rec := postSearch(t, h, map[string]any{"queries": qs, "theta": 0.2})
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.BatchMode != "shared" {
		t.Fatalf("uniform batch mode %q, want shared", resp.BatchMode)
	}
	for i, q := range qs {
		want := single(q, 0.2)
		if !reflect.DeepEqual(resp.Answers[i].Results, want) &&
			!(len(resp.Answers[i].Results) == 0 && len(want) == 0) {
			t.Fatalf("shared batch query %d diverges from single answer", i)
		}
	}

	// Equal per-query thetas still count as uniform.
	thetas := make([]float64, len(qs))
	for i := range thetas {
		thetas[i] = 0.2
	}
	rec = postSearch(t, h, map[string]any{"queries": qs, "thetas": thetas})
	resp = searchResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.BatchMode != "shared" {
		t.Fatalf("uniform thetas batch mode %q, want shared", resp.BatchMode)
	}

	// Mixed radii → per-query fallback, still correct per query.
	for i := range thetas {
		thetas[i] = []float64{0.1, 0.2, 0.3}[i%3]
	}
	rec = postSearch(t, h, map[string]any{"queries": qs, "thetas": thetas})
	resp = searchResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.BatchMode != "per-query" {
		t.Fatalf("mixed batch mode %q, want per-query", resp.BatchMode)
	}
	for i, q := range qs {
		want := single(q, thetas[i])
		if !reflect.DeepEqual(resp.Answers[i].Results, want) &&
			!(len(resp.Answers[i].Results) == 0 && len(want) == 0) {
			t.Fatalf("mixed batch query %d diverges from single answer", i)
		}
	}

	// Validation: thetas without queries, length mismatch, out of range.
	for i, body := range []map[string]any{
		{"query": qs[0], "thetas": thetas, "theta": 0.2},
		{"queries": qs, "thetas": thetas[:2]},
		{"queries": qs, "thetas": append([]float64{1.5}, thetas[1:]...)},
	} {
		if rec := postSearch(t, h, body); rec.Code != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400 (%s)", i, rec.Code, rec.Body)
		}
	}

	// Batch counters reflect the split.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.BatchShared != 2 || st.BatchPerQuery != 1 {
		t.Fatalf("batch counters shared=%d perQuery=%d, want 2/1", st.BatchShared, st.BatchPerQuery)
	}
	if st.Planner != nil {
		t.Fatalf("non-hybrid kind exposes planner stats: %+v", st.Planner)
	}
}

// TestHybridServeMutationDifferential is the serving-layer acceptance test
// of the mutable hybrid: a sharded -kind hybrid server absorbs a random
// mutation workload over HTTP — with the delta ratio set low enough that
// background epoch rebuilds trigger mid-workload — while /search and /knn
// answers stay byte-identical to the linear-scan oracle throughout.
func TestHybridServeMutationDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	rs := difftest.RandomCollection(rng, 240, 8, 150)
	o := difftest.NewOracle(rs)
	sh, err := shard.New(rs, 3, builderFor("hybrid", 0.3, "", 0, 0.05, ""))
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(sh, "hybrid").routes()

	checkSearch := func(q ranking.Ranking, theta float64) {
		t.Helper()
		rec := postSearch(t, h, map[string]any{"query": q, "theta": theta})
		if rec.Code != http.StatusOK {
			t.Fatalf("search: %d %s", rec.Code, rec.Body)
		}
		var resp searchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want, _ := o.Search(q, theta)
		if len(resp.Results) != len(want) {
			t.Fatalf("θ=%.2f: %d results, oracle %d", theta, len(resp.Results), len(want))
		}
		for i, r := range resp.Results {
			if r.ID != want[i].ID || r.Dist != want[i].Dist {
				t.Fatalf("θ=%.2f result %d: got (%d,%d), want (%d,%d)",
					theta, i, r.ID, r.Dist, want[i].ID, want[i].Dist)
			}
		}
	}

	for op := 0; op < 300; op++ {
		switch c := rng.Intn(4); {
		case c < 2: // insert
			r := difftest.RandomRanking(rng, 8, 150)
			rec := post(t, h, "/insert", fmt.Sprintf(`{"ranking":%s}`, mustJSON(t, r)))
			if rec.Code != http.StatusOK {
				t.Fatalf("insert: %d %s", rec.Code, rec.Body)
			}
			var resp mutateResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if want := o.Insert(r); resp.ID != want {
				t.Fatalf("insert id %d, oracle assigned %d", resp.ID, want)
			}
		case c == 2: // delete
			ids := o.LiveIDs()
			if len(ids) <= 1 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if rec := post(t, h, "/delete", fmt.Sprintf(`{"id":%d}`, id)); rec.Code != http.StatusOK {
				t.Fatalf("delete(%d): %d %s", id, rec.Code, rec.Body)
			}
			if err := o.Delete(id); err != nil {
				t.Fatal(err)
			}
		default: // update
			ids := o.LiveIDs()
			id := ids[rng.Intn(len(ids))]
			r := difftest.RandomRanking(rng, 8, 150)
			if rec := post(t, h, "/update", fmt.Sprintf(`{"id":%d,"ranking":%s}`, id, mustJSON(t, r))); rec.Code != http.StatusOK {
				t.Fatalf("update(%d): %d %s", id, rec.Code, rec.Body)
			}
			if err := o.Update(id, r); err != nil {
				t.Fatal(err)
			}
		}
		if op%10 == 0 {
			checkSearch(difftest.RandomRanking(rng, 8, 150), difftest.Thetas[rng.Intn(len(difftest.Thetas))])
		}
	}

	// The workload overflowed the 5% delta ratio many times over: at least
	// one background epoch rebuild must install (poll; it is asynchronous).
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
		var st statsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Rebuilds > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no epoch rebuild installed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Post-rebuild: range and KNN answers still match the oracle.
	for trial := 0; trial < 10; trial++ {
		checkSearch(difftest.RandomRanking(rng, 8, 150), difftest.Thetas[rng.Intn(len(difftest.Thetas))])
	}
	q := difftest.RandomRanking(rng, 8, 150)
	rec := post(t, h, "/knn", fmt.Sprintf(`{"query":%s,"n":7}`, mustJSON(t, q)))
	if rec.Code != http.StatusOK {
		t.Fatalf("knn: %d %s", rec.Code, rec.Body)
	}
	var kr knnResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &kr); err != nil {
		t.Fatal(err)
	}
	want := bruteKNN(o.Slots(), q, 7)
	if len(kr.Results) != len(want) {
		t.Fatalf("knn: %d results, want %d", len(kr.Results), len(want))
	}
	for i, r := range kr.Results {
		if r.ID != want[i].ID || r.Dist != want[i].Dist {
			t.Fatalf("knn result %d: got (%d,%d), want (%d,%d)", i, r.ID, r.Dist, want[i].ID, want[i].Dist)
		}
	}
}

// bruteKNN ranks live slots by (distance, id).
func bruteKNN(slots []ranking.Ranking, q ranking.Ranking, n int) []ranking.Result {
	var all []ranking.Result
	for id, r := range slots {
		if r == nil {
			continue
		}
		all = append(all, ranking.Result{ID: ranking.ID(id), Dist: ranking.Footrule(q, r)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
