// Package wal is the durability subsystem of the serving stack: an
// append-only, checksummed, length-prefixed mutation log that makes the
// volatile mutation support of the index kinds (tombstones, delta overlays,
// epoch rebuilds) crash-safe. The paper's structures are all rebuilt from
// the external-id slot array, so a durable slot-array-delta log — one record
// per acked Insert/Delete/Update, keyed by external id — is the only state
// needed to reconstruct any index byte-identically after a crash:
// recovery is "load the latest checkpoint (or the original snapshot), then
// replay the WAL suffix in log order".
//
// Layout: a WAL directory holds numbered segment files and checkpoint
// files,
//
//	wal-0000000000000001.log      records of segment 1
//	wal-0000000000000002.log      records of segment 2 (sealed by a rotate
//	                              or a restart; the active segment is the
//	                              highest-numbered one)
//	checkpoint-0000000000000002.bin  collection state before any record of
//	                              segment 2 (written atomically; segments
//	                              below its sequence are deleted after it
//	                              lands)
//	checkpoint-0000000000000003.v3f  the paged form of the same artifact:
//	                              an incremental-checkpoint footer whose
//	                              pages live in the shared page file
//	pages.v3                      shared physical pages of every .v3f
//	                              checkpoint (shadow-paged, see
//	                              persist.Pager); never truncated
//
// Each segment starts with a 20-byte header (magic, version, sequence) and
// continues with records framed as
//
//	u32 payload length | u32 CRC-32C of the payload | payload
//	payload: u8 op | u32 external id | u16 k | k × u32 items
//
// A torn tail — a crash mid-append leaves a half-written record at the end
// of the active segment — fails the length or checksum test and is
// discarded by Replay along with everything after it in that segment.
// Segments closed in an orderly way (Rotate, Close) end with a seal frame;
// a decode failure inside a sealed segment is not a torn tail but
// corruption of previously synced data, and Replay reports ErrCorrupt
// instead of silently dropping acked records.
//
// Durability policy is group commit: WithSyncEvery(n) fsyncs after every
// n-th append (n=1 is synchronous commit: every acked mutation is on disk
// before Append returns), WithSyncInterval(d) adds a background flusher so
// relaxed policies bound the loss window by time as well as by count.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"topk/internal/ranking"
	"topk/internal/telemetry"
)

const (
	magic   = 0x544b574c // "TKWL"
	version = 1
	// headerSize is magic u32 + version u32 + sequence u64 + reserved u32.
	headerSize = 20
	// maxPayload bounds a record's declared payload length: 7 framing bytes
	// plus the largest ranking the persist format accepts (k ≤ 255). A
	// corrupted length field must not provoke a huge allocation.
	maxPayload = 7 + 4*255
)

// Op discriminates mutation records.
type Op uint8

const (
	// OpInsert records an acked Insert; ID is the external id the engine
	// assigned, so replay can verify id continuity.
	OpInsert Op = 1
	// OpDelete records an acked Delete of ID.
	OpDelete Op = 2
	// OpUpdate records an acked Update: Ranking replaces the one under ID.
	OpUpdate Op = 3
	// opSeal is the internal end-of-segment marker Rotate and Close append:
	// its presence distinguishes "this segment ended where its writer
	// stopped" from "synced bytes rotted away". Never passed to Replay
	// callbacks.
	opSeal Op = 4
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one logged mutation. Ranking is nil for deletes.
type Record struct {
	Op      Op
	ID      ranking.ID
	Ranking ranking.Ranking
}

// ErrCorrupt is returned when a sealed segment (or a checkpoint reference)
// fails validation — unlike a torn tail in the active segment, which Replay
// discards silently, this means acked records are unrecoverable.
var ErrCorrupt = errors.New("wal: corrupt log")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Option configures a Log.
type Option func(*Log)

// WithSyncEvery sets the group-commit batch: fsync after every n-th
// appended record. n=1 (the default) is synchronous commit — Append does
// not return before the record is durable. n=0 disables count-based
// syncing entirely (rely on WithSyncInterval, rotation and Close).
func WithSyncEvery(n int) Option { return func(l *Log) { l.syncEvery = n } }

// WithSyncInterval starts a background flusher that syncs the log at least
// every d. Combines with WithSyncEvery; d=0 (the default) disables it.
func WithSyncInterval(d time.Duration) Option { return func(l *Log) { l.syncInterval = d } }

// Stats is a point-in-time snapshot of the log's durability counters.
type Stats struct {
	// ActiveSegment is the sequence number records are currently appended to.
	ActiveSegment uint64 `json:"activeSegment"`
	// Segments counts segment files on disk (sealed + active).
	Segments int `json:"segments"`
	// Appended counts records appended since Open.
	Appended uint64 `json:"appended"`
	// AppendedBytes counts record bytes appended since Open (excluding
	// segment headers).
	AppendedBytes int64 `json:"appendedBytes"`
	// SyncedBytes counts appended bytes known durable (≤ AppendedBytes; the
	// difference is the loss window of the configured sync policy).
	SyncedBytes int64 `json:"syncedBytes"`
	// Syncs counts fsync calls since Open.
	Syncs uint64 `json:"syncs"`
	// Checkpoints counts checkpoints written since Open.
	Checkpoints uint64 `json:"checkpoints"`
	// LastCheckpointUnix is the wall-clock second of the last checkpoint
	// written by this process, 0 if none.
	LastCheckpointUnix int64 `json:"lastCheckpointUnix,omitempty"`
	// FsyncLatency is the distribution of fsync durations (seconds) since
	// Open — the dominant term of synchronous-commit append latency.
	FsyncLatency telemetry.HistogramSnapshot `json:"fsyncLatency"`
}

// Log is an open WAL directory accepting appends. All methods are safe for
// concurrent use; Append's durability point is governed by the sync policy.
type Log struct {
	dir          string
	syncEvery    int
	syncInterval time.Duration

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	seq      uint64
	segments int
	pending  int // appends since the last sync
	closed   bool
	// syncErr latches the first flush/fsync failure. fsync errors are not
	// sticky at the OS level (a later fsync can "succeed" with the data
	// gone), so once one is seen every subsequent Append fails — the server
	// treats that as fatal rather than keep acking mutations it cannot make
	// durable.
	syncErr error

	appended      uint64
	appendedBytes int64
	syncedBytes   int64
	syncs         uint64
	checkpoints   uint64
	lastCp        int64
	fsyncHist     *telemetry.Histogram // fsync duration, seconds

	stopFlush chan struct{}
	flushDone chan struct{}
}

// Open creates (if needed) the WAL directory and starts a fresh segment
// with a sequence one above everything already on disk. Existing segments
// are left untouched — they are the replay source; Open never repairs or
// truncates them, so it is safe to call after Replay.
func Open(dir string, opts ...Option) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, cps, err := scan(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 && segs[n-1]+1 > next {
		next = segs[n-1] + 1
	}
	if n := len(cps); n > 0 && cps[n-1]+1 > next {
		next = cps[n-1] + 1
	}
	l := &Log{
		dir: dir, syncEvery: 1, seq: next, segments: len(segs) + 1,
		// 10µs..~160ms: spans page-cache-only fsyncs through spinning rust.
		fsyncHist: telemetry.NewHistogram(telemetry.ExpBuckets(10e-6, 2, 15)),
	}
	for _, o := range opts {
		o(l)
	}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	if l.syncInterval > 0 {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// Dir returns the WAL directory.
func (l *Log) Dir() string { return l.dir }

// segmentPath names segment seq's file.
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

// checkpointPath names checkpoint seq's monolithic (v2) file.
func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016x.bin", seq))
}

// footerPath names checkpoint seq's incremental (paged v3) footer file,
// whose pages live in the shared pages.v3 next to it.
func footerPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016x.v3f", seq))
}

// resolveCheckpointPath returns whichever artifact exists for checkpoint
// seq — the paged footer wins over the monolithic file — or "" if neither
// does.
func resolveCheckpointPath(dir string, seq uint64) string {
	for _, p := range []string{footerPath(dir, seq), checkpointPath(dir, seq)} {
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	return ""
}

// scan lists segment and checkpoint sequence numbers present in dir,
// ascending. Checkpoints cover both the monolithic .bin form and the
// paged .v3f footer form; the shared pages.v3 file is not a sequenced
// artifact and is never listed (and so never truncated).
func scan(dir string) (segs, cps []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[uint64]bool)
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if seq, ok := parseSeq(name, "wal-", ".log"); ok {
				segs = append(segs, seq)
			}
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".bin"):
			if seq, ok := parseSeq(name, "checkpoint-", ".bin"); ok && !seen[seq] {
				seen[seq] = true
				cps = append(cps, seq)
			}
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".v3f"):
			if seq, ok := parseSeq(name, "checkpoint-", ".v3f"); ok && !seen[seq] {
				seen[seq] = true
				cps = append(cps, seq)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(cps, func(i, j int) bool { return cps[i] < cps[j] })
	return segs, cps, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	seq, err := strconv.ParseUint(s, 16, 64)
	return seq, err == nil && seq > 0
}

// openSegmentLocked creates segment seq and writes its header. The header
// is flushed (not fsynced) immediately so a subsequent crash leaves a
// well-formed empty segment rather than a headerless file.
func (l *Log) openSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(segmentPath(l.dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	l.f, l.bw, l.seq, l.pending = f, bw, seq, 0
	return nil
}

// encode appends rec's frame (length, CRC, payload) to dst.
func encode(dst []byte, rec Record) ([]byte, error) {
	k := len(rec.Ranking)
	if k > 255 {
		return dst, fmt.Errorf("wal: ranking size %d exceeds 255", k)
	}
	if rec.Op != OpInsert && rec.Op != OpDelete && rec.Op != OpUpdate && rec.Op != opSeal {
		return dst, fmt.Errorf("wal: invalid op %d", rec.Op)
	}
	payloadLen := 7 + 4*k
	start := len(dst)
	dst = append(dst, make([]byte, 8+payloadLen)...)
	payload := dst[start+8:]
	payload[0] = byte(rec.Op)
	binary.LittleEndian.PutUint32(payload[1:], rec.ID)
	binary.LittleEndian.PutUint16(payload[5:], uint16(k))
	for i, it := range rec.Ranking {
		binary.LittleEndian.PutUint32(payload[7+4*i:], it)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst, nil
}

// decode parses one payload into a Record.
func decode(payload []byte) (Record, error) {
	if len(payload) < 7 {
		return Record{}, fmt.Errorf("%w: payload %d bytes", ErrCorrupt, len(payload))
	}
	op := Op(payload[0])
	if op != OpInsert && op != OpDelete && op != OpUpdate {
		return Record{}, fmt.Errorf("%w: unknown op %d", ErrCorrupt, payload[0])
	}
	id := binary.LittleEndian.Uint32(payload[1:])
	k := int(binary.LittleEndian.Uint16(payload[5:]))
	if len(payload) != 7+4*k {
		return Record{}, fmt.Errorf("%w: payload %d bytes for k=%d", ErrCorrupt, len(payload), k)
	}
	rec := Record{Op: op, ID: id}
	if k > 0 {
		rec.Ranking = make(ranking.Ranking, k)
		for i := range rec.Ranking {
			rec.Ranking[i] = binary.LittleEndian.Uint32(payload[7+4*i:])
		}
	}
	if op == OpDelete && k != 0 {
		return Record{}, fmt.Errorf("%w: delete record carries a ranking", ErrCorrupt)
	}
	if op != OpDelete && k == 0 {
		return Record{}, fmt.Errorf("%w: %s record without a ranking", ErrCorrupt, op)
	}
	return rec, nil
}

// Append logs one mutation record. It returns once the record is written to
// the active segment and, when the record closes a group-commit batch
// (every syncEvery-th append), fsynced — with the default WithSyncEvery(1)
// every Append is durable before it returns. Callers must serialize
// Appends with the mutations they log so the log order equals the apply
// order; the server does this with one mutation mutex.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.syncErr != nil {
		return fmt.Errorf("wal: log failed a previous sync: %w", l.syncErr)
	}
	frame, err := encode(nil, rec)
	if err != nil {
		return err
	}
	if _, err := l.bw.Write(frame); err != nil {
		return err
	}
	l.appended++
	l.appendedBytes += int64(len(frame))
	l.pending++
	if l.syncEvery > 0 && l.pending >= l.syncEvery {
		return l.syncLocked()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.bw.Flush(); err != nil {
		l.syncErr = err
		return err
	}
	start := time.Now()
	err := l.f.Sync()
	l.fsyncHist.Observe(time.Since(start).Seconds())
	if err != nil {
		l.syncErr = err
		return err
	}
	l.pending = 0
	l.syncs++
	l.syncedBytes = l.appendedBytes
	return nil
}

// flushLoop is the WithSyncInterval background flusher. A failed sync
// latches syncErr, so the next Append — and with it the serving stack's
// fatal handler — surfaces it even under policies that never sync on the
// append path themselves.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.syncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.syncErr == nil && l.syncedBytes < l.appendedBytes {
				l.syncLocked()
			}
			l.mu.Unlock()
		case <-l.stopFlush:
			return
		}
	}
}

// sealLocked writes the end-of-segment marker and syncs, so readers can
// tell this segment's end apart from a crash-torn tail.
func (l *Log) sealLocked() error {
	frame, err := encode(nil, Record{Op: opSeal})
	if err != nil {
		return err
	}
	if _, err := l.bw.Write(frame); err != nil {
		return err
	}
	l.appendedBytes += int64(len(frame))
	return l.syncLocked()
}

// Rotate seals the active segment (seal marker + flush + fsync + close) and
// starts a new one, returning the new segment's sequence number. Records
// appended after Rotate land in the new segment — the checkpoint protocol
// calls Rotate while mutations are blocked, so the returned sequence is an
// exact consistency point: the collection state captured at that instant
// reflects every record below it and none at or above it.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log is closed")
	}
	if err := l.sealLocked(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	if err := l.openSegmentLocked(l.seq + 1); err != nil {
		return 0, err
	}
	l.segments++
	return l.seq, nil
}

// Checkpoint durably writes the collection state valid at sequence seq
// (obtained from Rotate) and then truncates the log: write is streamed to a
// temp file, fsynced, atomically renamed to checkpoint-<seq>.bin, the
// directory is fsynced, and only then are segments and checkpoints below
// seq removed. A crash at any point leaves either the old checkpoint plus
// all segments, or the new checkpoint (plus possibly not-yet-removed old
// files) — both recover correctly, because Replay starts at the newest
// checkpoint's sequence.
func (l *Log) Checkpoint(seq uint64, write func(f *os.File) error) error {
	tmp, err := os.CreateTemp(l.dir, "checkpoint-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), checkpointPath(l.dir, seq)); err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	return l.truncateBelow(seq)
}

// CheckpointPaged is the incremental-checkpoint variant of Checkpoint: the
// install func (typically persist.Pager.WriteCheckpoint) writes only the
// dirty pages into the directory's shared pages.v3 and atomically installs
// the checkpoint-<seq>.v3f footer; afterwards the log truncates segments
// and checkpoint artifacts below seq exactly as Checkpoint does. pages.v3
// itself is never truncated — superseded footers' pages return to the
// pager's free list instead.
func (l *Log) CheckpointPaged(seq uint64, install func(dir string) error) error {
	if err := install(l.dir); err != nil {
		return err
	}
	return l.truncateBelow(seq)
}

// truncateBelow removes the segments and checkpoint artifacts a durable
// checkpoint at seq supersedes (both .bin and .v3f forms), then updates
// the checkpoint counters.
func (l *Log) truncateBelow(seq uint64) error {
	segs, cps, err := scan(l.dir)
	if err != nil {
		return err
	}
	removed := 0
	for _, s := range segs {
		if s < seq {
			if err := os.Remove(segmentPath(l.dir, s)); err != nil {
				return err
			}
			removed++
		}
	}
	for _, c := range cps {
		if c < seq {
			for _, p := range []string{checkpointPath(l.dir, c), footerPath(l.dir, c)} {
				if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
					return err
				}
			}
		}
	}
	l.mu.Lock()
	l.segments -= removed
	l.checkpoints++
	l.lastCp = time.Now().Unix()
	l.mu.Unlock()
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Close seals, flushes and fsyncs the active segment and stops the
// background flusher. The log must not be appended to afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.sealLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	l.mu.Unlock()
	if l.stopFlush != nil {
		close(l.stopFlush)
		<-l.flushDone
	}
	return err
}

// Stats snapshots the durability counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		ActiveSegment:      l.seq,
		Segments:           l.segments,
		Appended:           l.appended,
		AppendedBytes:      l.appendedBytes,
		SyncedBytes:        l.syncedBytes,
		Syncs:              l.syncs,
		Checkpoints:        l.checkpoints,
		LastCheckpointUnix: l.lastCp,
		FsyncLatency:       l.fsyncHist.Snapshot(),
	}
}
