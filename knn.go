package topk

import (
	"fmt"

	"topk/internal/coarse"
	"topk/internal/knn"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// NearestNeighborSearcher is implemented by every index in this package:
// exact k-nearest-neighbor queries alongside the range queries of Index.
type NearestNeighborSearcher interface {
	// NearestNeighbors returns the n indexed rankings closest to q, ordered
	// by distance (ties broken by id). The answer is exact.
	NearestNeighbors(q Ranking, n int) ([]Result, error)
}

// rangeAdapter lifts an internal searcher into knn.RangeSearcher. For
// mutable indexes, whose internal id space can have tombstone holes, ids
// enumerates the live internal ids (knn.IDLister); immutable kinds leave it
// nil and keep the dense-id assumption.
type rangeAdapter struct {
	query func(q Ranking, rawTheta int) ([]Result, error)
	ids   func() []ranking.ID
	n, k  int
}

func (a rangeAdapter) Query(q ranking.Ranking, rawTheta int) ([]ranking.Result, error) {
	return a.query(q, rawTheta)
}
func (a rangeAdapter) Len() int { return a.n }
func (a rangeAdapter) K() int   { return a.k }
func (a rangeAdapter) LiveIDs() []ranking.ID {
	if a.ids == nil {
		return nil
	}
	return a.ids()
}

// NearestNeighbors implements NearestNeighborSearcher with an exact
// best-first BK-tree traversal for BKTree, and the expanding-radius
// reduction otherwise.
func (t *MetricTree) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	if q.K() != t.k {
		return nil, fmt.Errorf("topk: query size %d, index size %d: %w",
			q.K(), t.k, ranking.ErrSizeMismatch)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ev := metric.New(nil)
	defer func() { t.calls.Add(ev.Calls()) }()
	if t.kind == BKTree {
		return knn.BestFirst(t.bk, q, n, ev), nil
	}
	return knn.Expanding(rangeAdapter{
		query: func(q Ranking, raw int) ([]Result, error) { return t.rawSearch(q, raw, ev) },
		n:     len(t.rs), k: t.k,
	}, q, n)
}

// rawSearch answers a raw-threshold range query with ev as the per-query
// counting evaluator.
func (t *MetricTree) rawSearch(q Ranking, raw int, ev *metric.Evaluator) ([]Result, error) {
	var out []Result
	switch t.kind {
	case BKTree:
		out = t.bk.RangeSearchResults(q, raw, ev)
	case MTree:
		for _, id := range t.mt.RangeSearch(q, raw, ev) {
			out = append(out, Result{ID: id, Dist: ranking.Footrule(q, t.rs[id])})
		}
	case VPTree:
		for _, id := range t.vp.RangeSearch(q, raw, ev) {
			out = append(out, Result{ID: id, Dist: ranking.Footrule(q, t.rs[id])})
		}
	}
	ranking.SortResults(out)
	return out, nil
}

// NearestNeighbors implements NearestNeighborSearcher via the
// expanding-radius reduction over the coarse index's range search.
func (c *CoarseIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	mode := coarse.FV
	if c.drop {
		mode = coarse.FVDrop
	}
	s := c.pool.Get()
	defer c.pool.Put(s)
	ev := metric.New(nil)
	defer func() { c.calls.Add(ev.Calls()) }()
	res, err := knn.Expanding(rangeAdapter{
		query: func(q Ranking, raw int) ([]Result, error) {
			return s.Query(q, raw, ev, mode)
		},
		ids: func() []ranking.ID { return liveInternalIDs(c.idx.Len(), c.idx.Deleted) },
		n:   c.ids.live, k: c.k,
	}, q, n)
	c.ids.remapNN(res)
	return res, err
}

// NearestNeighbors implements NearestNeighborSearcher via the
// expanding-radius reduction over the configured algorithm.
func (ii *InvertedIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	ii.mu.RLock()
	defer ii.mu.RUnlock()
	s := ii.pool.Get()
	defer ii.pool.Put(s)
	ev := metric.New(nil)
	defer func() { ii.calls.Add(ev.Calls()) }()
	res, err := knn.Expanding(rangeAdapter{
		query: func(q Ranking, raw int) ([]Result, error) {
			return ii.searchWith(s, q, raw, ev)
		},
		ids: func() []ranking.ID { return liveInternalIDs(ii.idx.Len(), ii.idx.Deleted) },
		n:   ii.ids.live, k: ii.k,
	}, q, n)
	ii.ids.remapNN(res)
	return res, err
}

// NearestNeighbors implements NearestNeighborSearcher via the
// expanding-radius reduction over the blocked range search.
func (b *BlockedIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	s := b.pool.Get()
	defer b.pool.Put(s)
	ev := metric.New(nil)
	defer func() { b.calls.Add(ev.Calls()) }()
	return knn.Expanding(rangeAdapter{
		query: func(q Ranking, raw int) ([]Result, error) {
			return s.Query(q, raw, ev, b.mode)
		},
		n: b.idx.Len(), k: b.k,
	}, q, n)
}
