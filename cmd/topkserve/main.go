// Command topkserve is a sharded concurrent query service for top-k-list
// similarity search: it partitions a ranking collection across S sub-indices
// (one per core by default), fans every query out to all shards in parallel,
// and serves exact range queries over HTTP.
//
// Usage:
//
//	topkgen -preset nyt -n 50000 | topkserve -data - -kind hybrid
//	topkserve -load-snapshot rankings.bin -kind blocked-drop -shards 8
//	topkserve -load-snapshot rankings.bin -kind hybrid -wal /var/lib/topk/wal
//
// Endpoints:
//
//	POST /search   {"query":[1,2,3],"theta":0.2}            single query
//	               {"queries":[[1,2,3],[4,5,6]],"theta":0.2} batch
//	               {"queries":[...],"thetas":[0.1,0.3]}      mixed-radius batch
//	POST /knn      {"query":[1,2,3],"n":5}      exact k-nearest neighbors
//	POST /insert   {"ranking":[1,2,3]}          add a ranking, returns its id
//	POST /delete   {"id":7}                     remove a ranking
//	POST /update   {"id":7,"ranking":[3,2,1]}   replace a ranking, id stable
//	GET  /snapshot binary persist-v2 snapshot of the live collection
//	POST /checkpoint  (-wal only) durable snapshot into the WAL directory,
//	               then truncate the replayed log segments
//	GET  /stats    live collection size, per-shard Len/Tombstones/Delta/
//	               Rebuilds/DistanceCalls/latency histograms, fan-out and
//	               merge timings; for -kind hybrid also the per-backend plan
//	               counters of the planner
//	GET  /metrics  Prometheus text exposition: HTTP request/error/in-flight/
//	               latency by route and status, per-shard query histograms,
//	               fan-out and merge timings, planner plan/mispredict
//	               counters, WAL and epoch-rebuild counters, Go runtime stats
//	GET  /healthz  liveness probe (200 as long as the process serves HTTP)
//	GET  /readyz   readiness probe (503 until the initial index build and
//	               WAL replay finish, 200 after)
//	GET  /debug/trace  ring of the most recent per-request traces: request
//	               id, per-stage timings, hybrid backend attribution
//
// Observability: every request carries an X-Request-ID (generated when the
// client sends none) and records a span per stage (parse, plan, fan-out,
// merge, respond). -slow-query logs any request at least that slow to
// stderr as one-line JSON; -debug-addr starts a separate net/http/pprof
// listener for live profiling.
//
// Traffic hardening: request contexts propagate into the shard fan-out, so
// a client that disconnects (or a -default-timeout that fires) stops the
// search from scheduling further shard work — cancellation answers 499,
// timeouts 504. -max-concurrency bounds concurrent search weight (one unit
// per batch member) with a FIFO wait queue (-max-queue, -max-queue-wait);
// past it requests are shed with 429 + Retry-After instead of collapsing
// latency for everyone. -cache-entries enables an LRU result cache for
// single /search queries and /knn, invalidated wholesale by any acked
// mutation or epoch rebuild via a generation stamp.
//
// The hybrid kind (-kind hybrid) builds every physical backend per shard
// and routes each query to the one the cost model predicts cheapest;
// -force-backend pins routing and -calibrate replays sample queries against
// all backends at startup (both are rejected at startup for any other
// kind). Uniform-threshold batches are answered with shared-candidate
// processing (the paper's Section 8 batch mode) when the index kind
// supports it; mixed-radius batches fall back to per-query search.
//
// Mutations are supported by the mutable index kinds (hybrid, coarse*,
// inverted*, merge). The hybrid engine absorbs them across all five
// backends: the dynamic ones in place, the static ones through a delta
// overlay that a background epoch rebuild folds back in once it outgrows
// -delta-ratio (watch the per-shard delta/rebuilds counters on /stats).
// The read-only kinds (blocked*, bktree, mtree, vptree) serve search
// traffic only and reject mutations with 405. Request bodies on every
// endpoint are bounded by -max-body; larger ones get 413. GET /snapshot
// saved to a file and passed back via -load-snapshot reloads with all ids
// preserved — tombstoned ids stay retired; v1 snapshots load as all-live
// collections.
//
// Durability: -wal <dir> makes mutations crash-safe. Every acked
// Insert/Delete/Update is appended to an on-disk write-ahead log before the
// response is sent (sync policy via -wal-sync-every / -wal-sync-interval),
// and on startup the server recovers by loading the newest checkpoint in
// the WAL directory (falling back to -load-snapshot / -data for the base)
// and replaying the logged suffix through the shard router. POST
// /checkpoint streams a consistent v2 snapshot into the WAL directory and
// truncates the replayed log segments; /stats reports the WAL counters.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"topk"
	"topk/internal/admit"
	"topk/internal/persist"
	"topk/internal/qcache"
	"topk/internal/ranking"
	"topk/internal/shard"
	"topk/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dataPath   = flag.String("data", "", "collection path (- = stdin), one ranking per line")
		snapPath   = flag.String("load-snapshot", "", "binary collection snapshot (see topkgen -format binary / topkquery -save-snapshot)")
		kind       = flag.String("kind", "coarse", "hybrid|coarse|coarse-drop|inverted|inverted-drop|merge|blocked|blocked-drop|bktree|mtree|vptree")
		shards     = flag.Int("shards", 0, "number of shards (0 = GOMAXPROCS)")
		maxTheta   = flag.Float64("maxtheta", 0.3, "auto-tune target threshold for the coarse index / hybrid planner")
		force      = flag.String("force-backend", "", "hybrid only: pin all routing to one backend (inverted|blocked|coarse|bktree|adaptsearch)")
		calibrate  = flag.Int("calibrate", 0, "hybrid only: replay this many sample queries per shard against every backend at startup")
		deltaRatio = flag.Float64("delta-ratio", topk.DefaultCompactionRatio, "hybrid only: mutation-overlay fraction per shard above which a background epoch rebuild folds the delta into every backend (<= 0 disables)")
		maxBody    = flag.Int64("max-body", defaultMaxBody, "maximum request body size in bytes on every endpoint; larger bodies get 413")
		walDir     = flag.String("wal", "", "write-ahead-log directory: append every acked mutation before responding, recover checkpoint+log on startup (mutable kinds only)")
		walEvery   = flag.Int("wal-sync-every", 1, "fsync the WAL after every n-th mutation (1 = synchronous commit, 0 = rely on -wal-sync-interval and shutdown)")
		walIvl     = flag.Duration("wal-sync-interval", 0, "background WAL fsync interval (0 disables; combines with -wal-sync-every)")
		slowQuery  = flag.Duration("slow-query", 0, "log any request at least this slow to stderr as one-line JSON with per-stage timings (0 disables)")
		debugAddr  = flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty disables)")
		defTimeout = flag.Duration("default-timeout", 0, "per-request deadline on /search and /knn: past it the shard fan-out stops scheduling work and the client gets 504 (0 disables)")
		maxConc    = flag.Int("max-concurrency", 0, "admission control: concurrent search weight bound, one unit per batch member (0 = 2x GOMAXPROCS, negative disables admission control entirely)")
		maxQueue   = flag.Int("max-queue", 0, "admission control: requests allowed to wait for a search slot before shedding with 429 (0 = 4x effective -max-concurrency)")
		maxWait    = flag.Duration("max-queue-wait", time.Second, "admission control: longest a queued request waits for a slot before shedding with 429 (0 = wait as long as the request's own deadline allows)")
		cacheSize  = flag.Int("cache-entries", 0, "query-result cache capacity in entries for /search single queries and /knn; any acked mutation or epoch rebuild invalidates (0 disables)")
	)
	flag.StringVar(kind, "index", *kind, "deprecated alias for -kind")
	flag.Parse()
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateKindFlags(*kind, set); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if *walDir != "" && !mutableKind(*kind) {
		fmt.Fprintf(os.Stderr, "-wal applies only to mutable index kinds (have %q)\n", *kind)
		os.Exit(2)
	}

	// The listener comes up before the index builds: /healthz answers
	// (liveness) and /readyz holds 503 (readiness) throughout the build and
	// WAL replay, and install flips the index-backed routes live at the end.
	s := newServer(nil, *kind)
	s.maxBody = *maxBody
	s.tracer.slowQuery = *slowQuery
	s.defaultTimeout = *defTimeout
	s.admission = newAdmission(*maxConc, *maxQueue, *maxWait)
	s.cache = qcache.New(*cacheSize)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		if err := serveDebug(*debugAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	srv := &http.Server{Handler: s.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "listening on %s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveUntilShutdown(ctx, srv, ln, s, 5*time.Second) }()

	rankings, cpSeq, err := loadBase(*dataPath, *snapPath, *walDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !mutableKind(*kind) {
		// Read-only kinds cannot represent retired ids: compact any
		// tombstoned snapshot slots away and renumber densely.
		if compacted, dropped := dropTombstones(rankings); dropped > 0 {
			fmt.Fprintf(os.Stderr, "index kind %q is read-only: compacted %d tombstoned slots (ids renumbered)\n",
				*kind, dropped)
			rankings = compacted
		}
	}
	start := time.Now()
	sh, err := shard.New(rankings, *shards, builderFor(*kind, *maxTheta, *force, *calibrate, *deltaRatio))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "indexed %d rankings (k=%d) as %d %s shards in %v\n",
		sh.Len(), sh.K(), sh.NumShards(), *kind, time.Since(start).Round(time.Millisecond))

	if *walDir != "" && sh.K() > 255 {
		// The WAL record format (and the persist checkpoint reader) cap k at
		// 255. Failing here beats dying on the first client mutation.
		fmt.Fprintf(os.Stderr, "-wal supports ranking sizes up to 255, collection has k=%d\n", sh.K())
		os.Exit(2)
	}
	var wlog *wal.Log
	replayed := 0
	if *walDir != "" {
		if replayed, err = recoverWAL(*walDir, cpSeq, sh); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if wlog, err = wal.Open(*walDir, wal.WithSyncEvery(*walEvery), wal.WithSyncInterval(*walIvl)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wal %s: replayed %d records, %d live rankings, appending to segment %d\n",
			*walDir, replayed, sh.Len(), wlog.Stats().ActiveSegment)
	}
	s.install(sh, wlog, replayed)
	fmt.Fprintf(os.Stderr, "ready\n")

	if err := <-serveErr; err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// newAdmission resolves the admission-control flags into a controller.
// maxConc < 0 disables admission entirely (nil controller admits everything);
// 0 defaults to twice GOMAXPROCS — enough to keep every core busy through
// the fan-out while bounding memory and tail latency. maxQueue 0 defaults to
// four waiters per slot.
func newAdmission(maxConc, maxQueue int, maxWait time.Duration) *admit.Controller {
	if maxConc < 0 {
		return nil
	}
	if maxConc == 0 {
		maxConc = 2 * runtime.GOMAXPROCS(0)
	}
	if maxQueue == 0 {
		maxQueue = 4 * maxConc
	}
	return admit.New(int64(maxConc), maxQueue, maxWait)
}

// serveDebug starts the pprof listener: a separate address so profiling is
// never exposed on the serving port.
func serveDebug(addr string) error {
	dln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	dmux := http.NewServeMux()
	dmux.HandleFunc("/debug/pprof/", pprof.Index)
	dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "pprof listening on %s\n", dln.Addr())
	go func() {
		if err := http.Serve(dln, dmux); err != nil {
			fmt.Fprintf(os.Stderr, "pprof listener: %v\n", err)
		}
	}()
	return nil
}

// serveUntilShutdown runs srv on ln until ctx is cancelled, then drains: it
// waits for srv.Shutdown to finish handing back every in-flight request —
// not merely for Serve to return, which happens the moment the listener
// closes, while handlers are still running — and flushes and closes the WAL
// only after the last response is written, so a mutation acked during the
// drain is on disk before exit.
func serveUntilShutdown(ctx context.Context, srv *http.Server, ln net.Listener, s *server, drainTimeout time.Duration) error {
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
	}()
	err := srv.Serve(ln)
	// install publishes s.wal under walMu while this goroutine is serving,
	// so read it under the same lock.
	s.walMu.Lock()
	wlog := s.wal
	s.walMu.Unlock()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Serve failed on its own: ctx may never be cancelled, so don't wait
		// for the drain goroutine — just flush whatever the WAL holds.
		if wlog != nil {
			wlog.Close()
		}
		return err
	}
	<-drained
	if wlog != nil {
		if cerr := wlog.Close(); cerr != nil {
			return fmt.Errorf("wal close: %w", cerr)
		}
	}
	return nil
}

// loadBase resolves the collection the index is built from. With a WAL
// directory that holds a checkpoint, the checkpoint wins — it reflects every
// mutation up to its sequence, which -data/-load-snapshot predate; without
// one the usual sources apply (both may be omitted only when a checkpoint
// exists). Returns the sequence to replay the WAL from (0 = from the
// beginning).
func loadBase(dataPath, snapPath, walDir string) ([]ranking.Ranking, uint64, error) {
	if walDir != "" {
		seq, cpPath, err := wal.LatestCheckpoint(walDir)
		if err != nil {
			return nil, 0, err
		}
		if cpPath != "" {
			f, err := os.Open(cpPath)
			if err != nil {
				return nil, 0, err
			}
			defer f.Close()
			rankings, err := persist.ReadCollection(f)
			if err != nil {
				return nil, 0, fmt.Errorf("wal checkpoint %s: %w", cpPath, err)
			}
			if dataPath != "" || snapPath != "" {
				fmt.Fprintf(os.Stderr, "wal checkpoint %s supersedes -data/-load-snapshot\n", cpPath)
			}
			return rankings, seq, nil
		}
	}
	rankings, err := loadCollection(dataPath, snapPath)
	return rankings, 0, err
}

// recoverWAL replays the logged mutation suffix through the shard router so
// every record lands in (and re-extends) the shard that owned it when it
// was acked.
func recoverWAL(walDir string, fromSeq uint64, sh *shard.Sharded) (int, error) {
	st, err := wal.Replay(walDir, fromSeq, sh.Apply)
	if err != nil {
		return st.Records, fmt.Errorf("wal recovery: %w", err)
	}
	if st.TornSegments > 0 {
		fmt.Fprintf(os.Stderr, "wal %s: discarded the torn tail of %d segment(s)\n", walDir, st.TornSegments)
	}
	return st.Records, nil
}

// loadCollection reads the collection either from a text file of rankings or
// from a persist snapshot; exactly one source must be given.
func loadCollection(dataPath, snapPath string) ([]ranking.Ranking, error) {
	switch {
	case dataPath != "" && snapPath != "":
		return nil, fmt.Errorf("pass either -data or -load-snapshot, not both")
	case snapPath != "":
		f, err := os.Open(snapPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// Version-aware: v1 snapshots load as all-live collections, v2
		// snapshots restore tombstoned slots as nil entries.
		return persist.ReadCollection(f)
	case dataPath != "":
		var r io.Reader
		if dataPath == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(dataPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		var out []ranking.Ranking
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			rk, err := topk.ParseRanking(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", len(out)+1, err)
			}
			out = append(out, rk)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("missing -data or -load-snapshot")
	}
}

// validateKindFlags fails fast on flag combinations that would otherwise
// be silently ignored: the hybrid-planner knobs act only on -kind hybrid.
// set holds the flag names explicitly passed on the command line.
func validateKindFlags(kind string, set map[string]bool) error {
	if kind == "hybrid" {
		return nil
	}
	for _, name := range []string{"force-backend", "calibrate", "delta-ratio"} {
		if set[name] {
			return fmt.Errorf("-%s applies only to -kind hybrid (have %q)", name, kind)
		}
	}
	return nil
}

// mutableKind reports whether an index kind supports Insert/Delete/Update.
// Exactly these kinds can also represent retired (tombstoned) snapshot
// slots: their constructors all rebuild from one external-id slot array.
func mutableKind(kind string) bool {
	switch kind {
	case "hybrid", "coarse", "coarse-drop", "inverted", "inverted-drop", "merge":
		return true
	}
	return false
}

// dropTombstones removes nil (tombstoned) slots, renumbering densely.
func dropTombstones(slots []ranking.Ranking) ([]ranking.Ranking, int) {
	out := make([]ranking.Ranking, 0, len(slots))
	for _, r := range slots {
		if r != nil {
			out = append(out, r)
		}
	}
	return out, len(slots) - len(out)
}

// builderFor returns the shard builder for an index kind name. Slot-capable
// kinds build from slots so that tombstoned snapshot entries keep their ids
// retired; the other kinds require a dense collection (see dropTombstones).
func builderFor(kind string, maxTheta float64, force string, calibrate int, deltaRatio float64) shard.Builder {
	return func(rs []ranking.Ranking) (shard.Index, error) {
		switch kind {
		case "hybrid":
			opts := []topk.HybridOption{
				topk.WithHybridMaxTheta(maxTheta),
				topk.WithHybridDeltaRatio(deltaRatio),
			}
			if force != "" {
				opts = append(opts, topk.WithForcedBackend(force))
			}
			if calibrate > 0 {
				opts = append(opts, topk.WithHybridCalibration(calibrate))
			}
			return topk.NewHybridIndexFromSlots(rs, opts...)
		case "coarse":
			return topk.NewCoarseIndexFromSlots(rs, topk.WithAutoTune(maxTheta))
		case "coarse-drop":
			return topk.NewCoarseIndexFromSlots(rs, topk.WithThetaC(0.06), topk.WithListDropping())
		case "inverted":
			return topk.NewInvertedIndexFromSlots(rs, topk.WithAlgorithm(topk.FilterValidate))
		case "inverted-drop":
			return topk.NewInvertedIndexFromSlots(rs)
		case "merge":
			return topk.NewInvertedIndexFromSlots(rs, topk.WithAlgorithm(topk.ListMerge))
		case "blocked":
			return topk.NewBlockedIndex(rs)
		case "blocked-drop":
			return topk.NewBlockedIndex(rs, topk.WithBlockedDrop())
		case "bktree":
			return topk.NewMetricTree(rs, topk.BKTree)
		case "mtree":
			return topk.NewMetricTree(rs, topk.MTree)
		case "vptree":
			return topk.NewMetricTree(rs, topk.VPTree)
		default:
			return nil, fmt.Errorf("unknown index kind %q", kind)
		}
	}
}

// defaultMaxBody bounds request bodies when -max-body is not given.
const defaultMaxBody = 16 << 20

// server holds the shared sharded index and request counters.
type server struct {
	sh      *shard.Sharded
	kind    string
	maxBody int64
	started time.Time
	// ready gates the index-backed routes: false until the initial build
	// and WAL replay finish. install publishes sh/wal before flipping it,
	// so a true load is also the acquire barrier for reading s.sh.
	ready   atomic.Bool
	metrics *serverMetrics
	tracer  *tracer
	queries atomic.Uint64
	knn     atomic.Uint64
	// batchShared counts batches answered by the shared-candidate processor,
	// batchSplit those that fell back to independent per-query searches.
	batchShared atomic.Uint64
	batchSplit  atomic.Uint64
	mutations   atomic.Uint64

	// defaultTimeout bounds every /search and /knn request; admission bounds
	// their concurrency (nil = unbounded); cache serves repeated single
	// queries without touching the shards (nil = disabled). The cache is
	// generation-validated: see (*server).generation.
	defaultTimeout time.Duration
	admission      *admit.Controller
	cache          *qcache.Cache

	// wal, when non-nil, makes mutations durable: each handler applies the
	// mutation and appends its record under walMu — one lock for both steps,
	// so the log order always equals the apply order (two concurrent inserts
	// must not ack in one order and replay in the other). Checkpoints take
	// the same lock for their rotation+capture instant.
	wal         *wal.Log
	walMu       sync.Mutex
	walReplayed int
	// checkpointMu serializes whole POST /checkpoint requests (the snapshot
	// streaming runs outside walMu so mutations continue meanwhile).
	checkpointMu sync.Mutex
	// walFatal is called when a WAL append fails after the mutation was
	// already applied in memory; continuing would ack mutations the log
	// cannot replay. Overridable in tests.
	walFatal func(err error)
}

// newServer constructs the server. With a non-nil index it is ready to
// serve immediately (the test path); main passes nil so the listener can
// come up first and calls install once the build and WAL replay finish.
func newServer(sh *shard.Sharded, kind string) *server {
	s := &server{
		sh: sh, kind: kind, maxBody: defaultMaxBody, started: time.Now(),
		metrics: newServerMetrics(),
		tracer:  newTracer(0, os.Stderr),
		walFatal: func(err error) {
			fmt.Fprintf(os.Stderr, "fatal: wal append failed after the mutation was applied: %v\n", err)
			os.Exit(1)
		},
	}
	s.registerCollectors()
	if sh != nil {
		s.ready.Store(true)
	}
	return s
}

// install publishes the built index (and recovered WAL) and flips the
// server ready: the field writes happen before the atomic store, the gated
// handlers' load happens before their reads, so no handler ever sees a
// half-installed server.
func (s *server) install(sh *shard.Sharded, wlog *wal.Log, replayed int) {
	s.walMu.Lock()
	s.sh = sh
	s.wal = wlog
	s.walReplayed = replayed
	s.walMu.Unlock()
	s.ready.Store(true)
}

// applyInsert applies an insert and, with durability on, logs it before the
// caller acks. walMu spans apply+append so replay order matches ack order.
func (s *server) applyInsert(r ranking.Ranking) (ranking.ID, error) {
	if s.wal == nil {
		return s.sh.Insert(r)
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	id, err := s.sh.Insert(r)
	if err != nil {
		return 0, err
	}
	if err := s.wal.Append(wal.Record{Op: wal.OpInsert, ID: id, Ranking: r}); err != nil {
		s.walFatal(err)
		return 0, err
	}
	return id, nil
}

// applyDelete is the durable delete path; see applyInsert.
func (s *server) applyDelete(id ranking.ID) error {
	if s.wal == nil {
		return s.sh.Delete(id)
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if err := s.sh.Delete(id); err != nil {
		return err
	}
	if err := s.wal.Append(wal.Record{Op: wal.OpDelete, ID: id}); err != nil {
		s.walFatal(err)
		return err
	}
	return nil
}

// applyUpdate is the durable update path; see applyInsert.
func (s *server) applyUpdate(id ranking.ID, r ranking.Ranking) error {
	if s.wal == nil {
		return s.sh.Update(id, r)
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if err := s.sh.Update(id, r); err != nil {
		return err
	}
	if err := s.wal.Append(wal.Record{Op: wal.OpUpdate, ID: id, Ranking: r}); err != nil {
		s.walFatal(err)
		return err
	}
	return nil
}

// decodeJSON parses a request body bounded by the -max-body limit; a false
// return means the error response was already written — 413 when the body
// exceeded the limit, 400 for anything else. Exactly one JSON value is
// accepted: trailing garbage after it (which encoding/json's streaming
// Decode would silently leave unread) is a 400, trailing whitespace is fine.
func (s *server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if err == nil {
		var trailing json.RawMessage
		if terr := dec.Decode(&trailing); terr != io.EOF {
			httpError(w, http.StatusBadRequest, "trailing data after JSON body")
			return false
		}
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		httpError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes (raise -max-body)", mbe.Limit)
		return false
	}
	httpError(w, http.StatusBadRequest, "bad request body: %v", err)
	return false
}

// generation is the query-cache validity stamp: acked mutations plus
// installed epoch rebuilds, summed. Both components only grow, so any
// mutation or rebuild moves the generation and every cached entry stamped
// earlier stops matching — O(1) whole-cache invalidation. Mutation handlers
// bump s.mutations after the index apply and before the ack, so a read
// issued after an acked mutation always sees a newer generation than any
// entry the mutation could have affected.
func (s *server) generation() uint64 {
	return s.mutations.Load() + s.sh.Rebuilds()
}

// withDeadline applies the -default-timeout budget to a request context.
func (s *server) withDeadline(r *http.Request) (context.Context, context.CancelFunc) {
	if s.defaultTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.defaultTimeout)
}

// statusClientClosedRequest is nginx's 499: the client went away before the
// response. No standard code covers it, and logging these separately from
// real 5xx failures is exactly why nginx invented it.
const statusClientClosedRequest = 499

// writeSearchError maps a query-path failure onto the HTTP contract:
// client cancellation is 499, a blown deadline is 504 Gateway Timeout, and
// only genuine internal failures surface as 500.
func writeSearchError(w http.ResponseWriter, what string, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		httpError(w, statusClientClosedRequest, "%s canceled by client", what)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "%s deadline exceeded", what)
	default:
		httpError(w, http.StatusInternalServerError, "%s: %v", what, err)
	}
}

// writeShedError maps an admission failure: overload sheds are 429 Too Many
// Requests with Retry-After so well-behaved clients back off; a request
// whose own context died while queued reports like any other cancellation.
func writeShedError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admit.ErrQueueFull), errors.Is(err, admit.ErrWaitTimeout):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "server overloaded: %v", err)
	default:
		writeSearchError(w, "admission", err)
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	gated := func(route string, h http.HandlerFunc) http.HandlerFunc {
		return s.instrument(route, s.gate(h))
	}
	mux.HandleFunc("POST /search", gated("/search", s.handleSearch))
	mux.HandleFunc("POST /knn", gated("/knn", s.handleKNN))
	mux.HandleFunc("POST /insert", gated("/insert", s.handleInsert))
	mux.HandleFunc("POST /delete", gated("/delete", s.handleDelete))
	mux.HandleFunc("POST /update", gated("/update", s.handleUpdate))
	mux.HandleFunc("GET /snapshot", gated("/snapshot", s.handleSnapshot))
	mux.HandleFunc("POST /checkpoint", gated("/checkpoint", s.handleCheckpoint))
	mux.HandleFunc("GET /stats", gated("/stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/trace", s.instrument("/debug/trace", s.handleDebugTrace))
	return mux
}

// gate rejects index-backed requests until install has published the index:
// 503 with Retry-After, the standard not-ready contract, instead of a nil
// dereference mid-build.
func (s *server) gate(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "index not ready: initial build or WAL replay in progress")
			return
		}
		next(w, r)
	}
}

// instrument wraps a route with the HTTP metrics (request/error counters by
// status, in-flight gauge, latency histogram) and the per-request trace
// (X-Request-ID propagation, span recording, /debug/trace ring, slow-query
// log). The accounting runs in a deferred block so a panicking handler
// cannot leak the in-flight gauge or drop its trace: the panic is recovered
// into a 500 (when the handler had not started the response yet) and the
// request is counted and traced like any other failure.
func (s *server) instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := s.tracer.begin(route, w, r)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.metrics.inflight.Inc()
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				fmt.Fprintf(os.Stderr, "panic serving %s: %v\n%s", route, p, debug.Stack())
				if !sw.wroteHeader {
					httpError(sw, http.StatusInternalServerError, "internal error")
				} else {
					sw.status = http.StatusInternalServerError
				}
			}
			dur := time.Since(start)
			s.metrics.inflight.Dec()
			code := strconv.Itoa(sw.status)
			s.metrics.requests.With(route, code).Inc()
			if sw.status >= 400 {
				s.metrics.errors.With(route, code).Inc()
			}
			s.metrics.latency.With(route).Observe(dur.Seconds())
			s.tracer.finish(tr, sw.status, dur)
		}()
		next(sw, r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tr)))
	}
}

// handleSnapshot streams the current collection as a persist v2 snapshot:
// the external-id slot array with tombstones marked, so restarting with
// -load-snapshot preserves every id. `curl -s :8080/snapshot > snap.bin`.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	slots, ok := s.sh.Slots()
	if !ok {
		httpError(w, http.StatusBadRequest, "index kind %q exposes no snapshot view", s.kind)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=\"rankings-v2.bin\"")
	if _, err := persist.WriteCollection(w, slots); err != nil {
		// Headers are gone; all we can do is log.
		fmt.Fprintf(os.Stderr, "snapshot write: %v\n", err)
	}
}

// checkpointResponse reports what POST /checkpoint wrote and reclaimed.
type checkpointResponse struct {
	// Seq is the log sequence the checkpoint is consistent at: it reflects
	// every mutation acked before it and none after.
	Seq uint64 `json:"seq"`
	// Bytes is the size of the streamed snapshot.
	Bytes int64 `json:"bytes"`
	// Slots and Live describe the captured collection (id-space size and
	// non-tombstoned count).
	Slots int `json:"slots"`
	Live  int `json:"live"`
}

// handleCheckpoint makes the current collection state durable and truncates
// the WAL: under the mutation lock it rotates the log and captures the
// consistent slot view (an exact cut — see Sharded.Slots), then streams the
// v2 snapshot to the WAL directory off-lock, atomically installs it as
// checkpoint-<seq>.bin and deletes the segments it supersedes. Mutations
// arriving during the streaming land in the post-rotation segment, which
// recovery replays on top of the checkpoint.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		httpError(w, http.StatusBadRequest, "server started without -wal: nothing to checkpoint")
		return
	}
	s.checkpointMu.Lock()
	defer s.checkpointMu.Unlock()
	s.walMu.Lock()
	seq, err := s.wal.Rotate()
	if err != nil {
		s.walMu.Unlock()
		httpError(w, http.StatusInternalServerError, "wal rotate: %v", err)
		return
	}
	slots, ok := s.sh.Slots()
	s.walMu.Unlock()
	if !ok {
		httpError(w, http.StatusBadRequest, "index kind %q exposes no snapshot view", s.kind)
		return
	}
	var bytes int64
	if err := s.wal.Checkpoint(seq, func(f *os.File) error {
		n, werr := persist.WriteCollection(f, slots)
		bytes = n
		return werr
	}); err != nil {
		httpError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	live := 0
	for _, r := range slots {
		if r != nil {
			live++
		}
	}
	writeJSON(w, http.StatusOK, checkpointResponse{Seq: seq, Bytes: bytes, Slots: len(slots), Live: live})
}

// searchRequest is the /search payload: exactly one of Query or Queries,
// with either one shared Theta or (batch only) one theta per query.
type searchRequest struct {
	Query   ranking.Ranking   `json:"query,omitempty"`
	Queries []ranking.Ranking `json:"queries,omitempty"`
	Theta   float64           `json:"theta"`
	Thetas  []float64         `json:"thetas,omitempty"`
}

// resultJSON augments a raw result with its normalized distance.
type resultJSON struct {
	ID       ranking.ID `json:"id"`
	Dist     int        `json:"dist"`
	NormDist float64    `json:"normDist"`
}

type answerJSON struct {
	Count   int          `json:"count"`
	Results []resultJSON `json:"results"`
}

type searchResponse struct {
	TookMicros int64        `json:"tookMicros"`
	Count      int          `json:"count,omitempty"`
	Results    []resultJSON `json:"results,omitempty"`
	Answers    []answerJSON `json:"answers,omitempty"`
	// BatchMode reports how a batch was processed: "shared" when the
	// shared-candidate batch processor answered it, "per-query" otherwise.
	BatchMode string `json:"batchMode,omitempty"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	tr := traceFrom(r)
	parseStart := time.Now()
	var req searchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if (req.Query == nil) == (req.Queries == nil) {
		httpError(w, http.StatusBadRequest, "pass exactly one of \"query\" or \"queries\"")
		return
	}
	if req.Queries != nil && len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "\"queries\" must not be empty")
		return
	}
	if req.Thetas != nil {
		if req.Queries == nil {
			httpError(w, http.StatusBadRequest, "\"thetas\" requires \"queries\"")
			return
		}
		if len(req.Thetas) != len(req.Queries) {
			httpError(w, http.StatusBadRequest, "%d thetas for %d queries", len(req.Thetas), len(req.Queries))
			return
		}
		for i, t := range req.Thetas {
			if t < 0 || t > 1 {
				httpError(w, http.StatusBadRequest, "thetas[%d] = %v outside [0,1]", i, t)
				return
			}
		}
	}
	if req.Theta < 0 || req.Theta > 1 {
		httpError(w, http.StatusBadRequest, "theta %v outside [0,1]", req.Theta)
		return
	}
	queries := req.Queries
	if req.Query != nil {
		queries = []ranking.Ranking{req.Query}
	}
	for i, q := range queries {
		if q.K() != s.sh.K() {
			httpError(w, http.StatusBadRequest, "query %d has size %d, index has k=%d", i, q.K(), s.sh.K())
			return
		}
		if err := q.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
	}

	tr.addStage("parse", time.Since(parseStart))
	traceTheta := req.Theta
	if req.Thetas != nil {
		traceTheta = req.Thetas[0]
	}
	tr.setQueryShape(traceTheta, len(queries), s.sh.K())

	ctx, cancelReq := s.withDeadline(r)
	defer cancelReq()
	admitStart := time.Now()
	release, err := s.admission.Acquire(ctx, int64(len(queries)))
	if err != nil {
		writeShedError(w, err)
		return
	}
	defer release()
	tr.addStage("admit", time.Since(admitStart))

	start := time.Now()
	answers, mode, err := s.runSearch(ctx, req, queries, tr)
	if err != nil {
		writeSearchError(w, "search", err)
		return
	}
	s.queries.Add(uint64(len(queries)))
	respondStart := time.Now()
	defer func() { tr.addStage("respond", time.Since(respondStart)) }()
	resp := searchResponse{TookMicros: time.Since(start).Microseconds()}
	if req.Query != nil {
		resp.Count = len(answers[0])
		resp.Results = s.toJSON(answers[0])
	} else {
		resp.BatchMode = mode
		resp.Answers = make([]answerJSON, len(answers))
		for i, a := range answers {
			resp.Answers[i] = answerJSON{Count: len(a), Results: s.toJSON(a)}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// runSearch dispatches a validated /search request: uniform-threshold
// batches go through the shared-candidate batch processor when the index
// kind supports it, mixed-radius batches (and kinds without batch support)
// fall back to independent per-query searches. Single queries probe the
// result cache first, then run through the traced scatter-gather so the
// request trace records fan-out and merge timings plus backend attribution;
// batch stages are recorded whole. ctx cancellation propagates into the
// shard fan-out on every path.
func (s *server) runSearch(ctx context.Context, req searchRequest, queries []ranking.Ranking, tr *requestTrace) ([][]ranking.Result, string, error) {
	planStart := time.Now()
	theta, uniform := req.Theta, true
	if req.Thetas != nil {
		theta = req.Thetas[0]
		for _, t := range req.Thetas[1:] {
			if t != theta {
				uniform = false
				break
			}
		}
	}
	tr.addStage("plan", time.Since(planStart))
	if req.Query != nil {
		var (
			key qcache.Key
			gen uint64
		)
		if s.cache != nil {
			// The generation is read BEFORE the search: a mutation landing
			// mid-search makes the entry conservatively stale, never wrongly
			// fresh (see qcache's package comment).
			key = qcache.Key{Kind: "search", Query: queries[0].String(), Theta: theta}
			gen = s.generation()
			if res, ok := s.cache.Get(key, gen); ok {
				tr.addStage("cache", time.Since(planStart))
				return [][]ranking.Result{res}, "cached", nil
			}
		}
		res, qt, err := s.sh.SearchTracedContext(ctx, queries[0], theta)
		tr.addStageMicros("fanout", qt.FanoutMicros)
		tr.addStageMicros("merge", qt.MergeMicros)
		tr.setAttribution(qt.Backends, qt.DistanceCalls)
		if err != nil {
			return nil, "", err
		}
		s.cache.Put(key, gen, res)
		return [][]ranking.Result{res}, "per-query", nil
	}
	searchStart := time.Now()
	defer func() { tr.addStage("search", time.Since(searchStart)) }()
	if !uniform {
		s.batchSplit.Add(1)
		res, err := s.sh.SearchBatchThetasContext(ctx, queries, req.Thetas)
		return res, "per-query", err
	}
	if len(queries) > 1 {
		if res, ok, err := s.sh.SearchBatchSharedContext(ctx, queries, theta); ok {
			s.batchShared.Add(1)
			return res, "shared", err
		}
	}
	s.batchSplit.Add(1)
	res, err := s.sh.SearchBatchContext(ctx, queries, theta)
	return res, "per-query", err
}

// knnRequest is the /knn payload.
type knnRequest struct {
	Query ranking.Ranking `json:"query"`
	N     int             `json:"n"`
}

type knnResponse struct {
	TookMicros int64        `json:"tookMicros"`
	Count      int          `json:"count"`
	Results    []resultJSON `json:"results"`
}

// handleKNN answers an exact k-nearest-neighbor query with the sharded
// per-shard fan-out and (distance, id) heap merge.
func (s *server) handleKNN(w http.ResponseWriter, r *http.Request) {
	tr := traceFrom(r)
	parseStart := time.Now()
	var req knnRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Query == nil {
		httpError(w, http.StatusBadRequest, "missing \"query\"")
		return
	}
	if req.N <= 0 {
		httpError(w, http.StatusBadRequest, "\"n\" must be positive, have %d", req.N)
		return
	}
	if req.Query.K() != s.sh.K() {
		httpError(w, http.StatusBadRequest, "query has size %d, index has k=%d", req.Query.K(), s.sh.K())
		return
	}
	if err := req.Query.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr.addStage("parse", time.Since(parseStart))
	tr.setQueryShape(0, 1, s.sh.K())
	ctx, cancelReq := s.withDeadline(r)
	defer cancelReq()
	admitStart := time.Now()
	release, err := s.admission.Acquire(ctx, 1)
	if err != nil {
		writeShedError(w, err)
		return
	}
	defer release()
	tr.addStage("admit", time.Since(admitStart))
	start := time.Now()
	var (
		key qcache.Key
		gen uint64
	)
	res, cached := []ranking.Result(nil), false
	if s.cache != nil {
		key = qcache.Key{Kind: "knn", Query: req.Query.String(), N: req.N}
		gen = s.generation()
		res, cached = s.cache.Get(key, gen)
	}
	if !cached {
		res, err = s.sh.NearestNeighborsContext(ctx, req.Query, req.N)
		if err != nil {
			writeSearchError(w, "knn", err)
			return
		}
		s.cache.Put(key, gen, res)
	}
	tr.addStage("search", time.Since(start))
	s.knn.Add(1)
	writeJSON(w, http.StatusOK, knnResponse{
		TookMicros: time.Since(start).Microseconds(),
		Count:      len(res),
		Results:    s.toJSON(res),
	})
}

func (s *server) toJSON(rs []ranking.Result) []resultJSON {
	dmax := float64(topk.MaxDistance(s.sh.K()))
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON{ID: r.ID, Dist: r.Dist, NormDist: float64(r.Dist) / dmax}
	}
	return out
}

// mutateRequest is the payload of /insert, /delete and /update. ID is a
// pointer so a missing field is distinguishable from id 0.
type mutateRequest struct {
	ID      *ranking.ID     `json:"id,omitempty"`
	Ranking ranking.Ranking `json:"ranking,omitempty"`
}

type mutateResponse struct {
	ID ranking.ID `json:"id"`
	N  int        `json:"n"`
}

// decodeMutation parses and bounds a mutation body; a false return means an
// error response was already written. Mutations against a read-only index
// kind are 405 Method Not Allowed, never 500.
func (s *server) decodeMutation(w http.ResponseWriter, r *http.Request) (mutateRequest, bool) {
	var req mutateRequest
	if !s.decodeJSON(w, r, &req) {
		return req, false
	}
	if !s.sh.Mutable() {
		httpError(w, http.StatusMethodNotAllowed, "index kind %q is read-only: mutations are not supported", s.kind)
		return req, false
	}
	return req, true
}

// writeMutationError maps a mutation failure onto the endpoint contract:
// unknown or retired ids are 404, mutations a sub-index rejects as
// read-only are 405, and only genuine internal failures surface as 500.
func (s *server) writeMutationError(w http.ResponseWriter, verb string, err error) {
	switch {
	case errors.Is(err, topk.ErrUnknownID):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, shard.ErrImmutable):
		httpError(w, http.StatusMethodNotAllowed, "index kind %q is read-only: %s not supported", s.kind, verb)
	default:
		httpError(w, http.StatusInternalServerError, "%s: %v", verb, err)
	}
}

// checkRanking validates a mutation payload ranking against the index.
func (s *server) checkRanking(w http.ResponseWriter, rk ranking.Ranking) bool {
	if rk == nil {
		httpError(w, http.StatusBadRequest, "missing \"ranking\"")
		return false
	}
	if rk.K() != s.sh.K() {
		httpError(w, http.StatusBadRequest, "ranking has size %d, index has k=%d", rk.K(), s.sh.K())
		return false
	}
	if err := rk.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return false
	}
	return true
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeMutation(w, r)
	if !ok {
		return
	}
	if req.ID != nil {
		httpError(w, http.StatusBadRequest, "\"id\" is not an insert field (use /update to replace)")
		return
	}
	if !s.checkRanking(w, req.Ranking) {
		return
	}
	id, err := s.applyInsert(req.Ranking)
	if err != nil {
		s.writeMutationError(w, "insert", err)
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, mutateResponse{ID: id, N: s.sh.Len()})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeMutation(w, r)
	if !ok {
		return
	}
	if req.ID == nil {
		httpError(w, http.StatusBadRequest, "missing \"id\"")
		return
	}
	if req.Ranking != nil {
		httpError(w, http.StatusBadRequest, "\"ranking\" is not a delete field")
		return
	}
	if err := s.applyDelete(*req.ID); err != nil {
		s.writeMutationError(w, "delete", err)
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, mutateResponse{ID: *req.ID, N: s.sh.Len()})
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeMutation(w, r)
	if !ok {
		return
	}
	if req.ID == nil {
		httpError(w, http.StatusBadRequest, "missing \"id\"")
		return
	}
	if !s.checkRanking(w, req.Ranking) {
		return
	}
	if err := s.applyUpdate(*req.ID, req.Ranking); err != nil {
		s.writeMutationError(w, "update", err)
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, mutateResponse{ID: *req.ID, N: s.sh.Len()})
}

type statsResponse struct {
	Index         string `json:"index"`
	N             int    `json:"n"`
	K             int    `json:"k"`
	NumShards     int    `json:"numShards"`
	Mutable       bool   `json:"mutable"`
	Queries       uint64 `json:"queries"`
	KNNQueries    uint64 `json:"knnQueries"`
	BatchShared   uint64 `json:"batchShared"`
	BatchPerQuery uint64 `json:"batchPerQuery"`
	Mutations     uint64 `json:"mutations"`
	// Delta and Rebuilds sum the hybrid engine's mutation-overlay state
	// across shards: rankings awaiting the next epoch rebuild, and epoch
	// rebuilds installed so far. Both stay 0 for the other kinds.
	Delta         int     `json:"delta"`
	Rebuilds      uint64  `json:"rebuilds"`
	DistanceCalls uint64  `json:"distanceCalls"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Fanout and Merge are the cross-shard phase histograms of every
	// fanned-out search: scatter (dispatch until the slowest shard answers)
	// and gather (concatenating per-shard answers).
	Fanout shard.HistogramSnapshot `json:"fanout"`
	Merge  shard.HistogramSnapshot `json:"merge"`
	// Planner is the per-backend plan scoreboard of the hybrid engine,
	// aggregated across shards; absent for single-backend kinds.
	Planner []topk.PlanStats   `json:"planner,omitempty"`
	Shards  []shard.ShardStats `json:"shards"`
	// WAL reports the durability counters when the server runs with -wal.
	WAL *walStatsJSON `json:"wal,omitempty"`
	// Admission reports the load-shedding semaphore (absent when admission
	// control is disabled with -max-concurrency < 0); Cache the query-result
	// cache (absent without -cache-entries).
	Admission *admit.Stats  `json:"admission,omitempty"`
	Cache     *qcache.Stats `json:"cache,omitempty"`
}

// walStatsJSON is the /stats durability section: the log's own counters
// plus what startup recovery replayed.
type walStatsJSON struct {
	Dir      string `json:"dir"`
	Replayed int    `json:"replayed"`
	wal.Stats
}

// planStats is implemented by hybrid sub-indices.
type planStats interface{ PlanStats() []topk.PlanStats }

// aggregatePlanStats merges the per-shard plan scoreboards by backend name:
// plan and observation counters add up, the EWMAs combine as
// observation-weighted means.
func aggregatePlanStats(sh *shard.Sharded) []topk.PlanStats {
	var order []string
	acc := make(map[string]*topk.PlanStats)
	weightLat := make(map[string]float64)
	weightDFC := make(map[string]float64)
	for i := 0; i < sh.NumShards(); i++ {
		sub, _ := sh.Shard(i)
		ps, ok := sub.(planStats)
		if !ok {
			return nil
		}
		for _, st := range ps.PlanStats() {
			a := acc[st.Backend]
			if a == nil {
				a = &topk.PlanStats{Backend: st.Backend}
				acc[st.Backend] = a
				order = append(order, st.Backend)
			}
			a.Plans += st.Plans
			a.Observations += st.Observations
			a.Mispredicts += st.Mispredicts
			weightLat[st.Backend] += float64(st.Observations) * st.EWMALatencyNanos
			weightDFC[st.Backend] += float64(st.Observations) * st.EWMADistanceCalls
		}
	}
	out := make([]topk.PlanStats, 0, len(order))
	for _, name := range order {
		a := acc[name]
		if a.Observations > 0 {
			a.EWMALatencyNanos = weightLat[name] / float64(a.Observations)
			a.EWMADistanceCalls = weightDFC[name] / float64(a.Observations)
		}
		out = append(out, *a)
	}
	return out
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	shards := s.sh.Stats()
	delta, rebuilds := 0, uint64(0)
	for _, st := range shards {
		delta += st.Delta
		rebuilds += st.Rebuilds
	}
	var ws *walStatsJSON
	if s.wal != nil {
		ws = &walStatsJSON{Dir: s.wal.Dir(), Replayed: s.walReplayed, Stats: s.wal.Stats()}
	}
	var adm *admit.Stats
	if s.admission != nil {
		a := s.admission.Stats()
		adm = &a
	}
	var cst *qcache.Stats
	if s.cache != nil {
		c := s.cache.Stats()
		cst = &c
	}
	fan, mrg := s.sh.Timings()
	writeJSON(w, http.StatusOK, statsResponse{
		Index:         s.kind,
		N:             s.sh.Len(),
		K:             s.sh.K(),
		NumShards:     s.sh.NumShards(),
		Mutable:       s.sh.Mutable(),
		Queries:       s.queries.Load(),
		KNNQueries:    s.knn.Load(),
		BatchShared:   s.batchShared.Load(),
		BatchPerQuery: s.batchSplit.Load(),
		Mutations:     s.mutations.Load(),
		Delta:         delta,
		Rebuilds:      rebuilds,
		DistanceCalls: s.sh.DistanceCalls(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Fanout:        fan,
		Merge:         mrg,
		Planner:       aggregatePlanStats(s.sh),
		Shards:        shards,
		WAL:           ws,
		Admission:     adm,
		Cache:         cst,
	})
}

// handleHealthz is pure liveness: 200 as long as the process serves HTTP,
// regardless of index state. Use /readyz to gate traffic.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 503 until the initial index build
// and WAL replay have finished, 200 after. Because main starts the listener
// before building, a load balancer polling /readyz sees the server come up
// and hold traffic until it can actually answer.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
