package adaptsearch

import "sync"

// Pool hands out Searchers for concurrent queries against one Index. A
// Searcher's scratch state (stamp and count arrays, candidate buffer) is
// reused across queries; the pool lets any number of goroutines share one
// index without serializing behind a mutex and without paying a fresh O(n)
// allocation per query.
type Pool struct {
	idx *Index
	p   sync.Pool
}

// NewPool creates a searcher pool bound to idx.
func NewPool(idx *Index) *Pool {
	p := &Pool{idx: idx}
	p.p.New = func() any { return NewSearcher(idx) }
	return p
}

// Index returns the underlying index.
func (p *Pool) Index() *Index { return p.idx }

// Get returns a searcher ready for one query; return it with Put.
func (p *Pool) Get() *Searcher { return p.p.Get().(*Searcher) }

// Put returns a searcher to the pool.
func (p *Pool) Put(s *Searcher) { p.p.Put(s) }
