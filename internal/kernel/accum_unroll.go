//go:build topk_unroll

package kernel

import "topk/internal/ranking"

// distDense: 4-wide unrolled variant of the dense evaluation pass (see
// accum_scalar.go for the reference shape). Selected with -tags topk_unroll.
// Four independent probe chains per iteration give the CPU more memory-level
// parallelism on the stamp/rank loads; the remainder tail reuses the scalar
// body. Must stay byte-identical to the scalar variant — the kernel test
// suite runs under both tags.
func (kn *Kernel) distDense(tau ranking.Ranking) int {
	k, limit, gen := kn.k, kn.limit, kn.gen
	rank, stamp := kn.rank, kn.stamp
	d, matched, mqs := 0, 0, 0
	pt := 0
	for ; pt+4 <= len(tau); pt += 4 {
		i0, i1, i2, i3 := tau[pt], tau[pt+1], tau[pt+2], tau[pt+3]
		if uint32(i0) < limit && stamp[i0] == gen {
			pq := int(rank[i0])
			delta := pq - pt
			if delta < 0 {
				delta = -delta
			}
			d += delta
			matched++
			mqs += pq
		} else {
			d += k - pt
		}
		if uint32(i1) < limit && stamp[i1] == gen {
			pq := int(rank[i1])
			delta := pq - (pt + 1)
			if delta < 0 {
				delta = -delta
			}
			d += delta
			matched++
			mqs += pq
		} else {
			d += k - (pt + 1)
		}
		if uint32(i2) < limit && stamp[i2] == gen {
			pq := int(rank[i2])
			delta := pq - (pt + 2)
			if delta < 0 {
				delta = -delta
			}
			d += delta
			matched++
			mqs += pq
		} else {
			d += k - (pt + 2)
		}
		if uint32(i3) < limit && stamp[i3] == gen {
			pq := int(rank[i3])
			delta := pq - (pt + 3)
			if delta < 0 {
				delta = -delta
			}
			d += delta
			matched++
			mqs += pq
		} else {
			d += k - (pt + 3)
		}
	}
	for ; pt < len(tau); pt++ {
		it := tau[pt]
		if uint32(it) < limit && stamp[it] == gen {
			pq := int(rank[it])
			delta := pq - pt
			if delta < 0 {
				delta = -delta
			}
			d += delta
			matched++
			mqs += pq
		} else {
			d += k - pt
		}
	}
	return d + (k-matched)*k - (kn.totalQSum - mqs)
}
