// Package mtree implements the M-tree of Ciaccia, Patella and Zezula
// (VLDB 1997), the balanced, paged metric access method the paper uses as
// the second metric-space competitor in Figure 5. Objects live in leaves;
// internal entries carry a routing object, a covering radius and the
// distance to their parent's routing object, enabling two classic prunings
// during range search:
//
//  1. |d(q, parent) − d(parent, entry)| − r(entry) > radius  ⇒ skip without
//     computing d(q, entry)       (distance-to-parent pruning), and
//  2. d(q, entry) − r(entry) > radius                        ⇒ skip subtree.
//
// Splits promote two routing objects with the mM_RAD strategy (minimize the
// maximum of the two covering radii) over a bounded candidate sample and
// partition by generalized hyperplane, as in the original paper.
package mtree

import (
	"fmt"

	"topk/internal/metric"
	"topk/internal/ranking"
)

// DefaultCapacity is the default maximum number of entries per node. The
// original evaluation uses page-sized nodes; for an in-memory index a
// moderate fanout performs best.
const DefaultCapacity = 16

// entry is a node slot. In leaves, child is nil and radius is 0; in internal
// nodes, obj is the routing object and radius its covering radius.
type entry struct {
	id      ranking.ID // object id (leaf) or routing object id (internal)
	distPar int32      // distance to the parent node's routing object
	radius  int32      // covering radius (internal entries only)
	child   *node
}

type node struct {
	leaf    bool
	entries []entry
	parent  *node
	// parentEntry indexes the entry in parent that points to this node.
	parentEntry int
}

// Tree is an M-tree over a collection of same-size rankings.
type Tree struct {
	root     *node
	rankings []ranking.Ranking
	size     int
	k        int
	capacity int
}

// Option configures tree construction.
type Option func(*Tree)

// WithCapacity sets the node capacity (minimum 4).
func WithCapacity(c int) Option {
	return func(t *Tree) {
		if c < 4 {
			c = 4
		}
		t.capacity = c
	}
}

// New bulk-inserts the rankings into a fresh M-tree.
func New(rankings []ranking.Ranking, ev *metric.Evaluator, opts ...Option) (*Tree, error) {
	if ev == nil {
		ev = metric.New(nil)
	}
	t := &Tree{capacity: DefaultCapacity, rankings: rankings}
	for _, o := range opts {
		o(t)
	}
	if len(rankings) == 0 {
		return t, nil
	}
	t.k = rankings[0].K()
	t.root = &node{leaf: true}
	for id, r := range rankings {
		if r.K() != t.k {
			return nil, fmt.Errorf("mtree: ranking %d has size %d, want %d: %w",
				id, r.K(), t.k, ranking.ErrSizeMismatch)
		}
		t.insert(ranking.ID(id), ev)
	}
	return t, nil
}

// Len returns the number of indexed rankings.
func (t *Tree) Len() int { return t.size }

// K returns the ranking size.
func (t *Tree) K() int { return t.k }

func (t *Tree) insert(id ranking.ID, ev *metric.Evaluator) {
	t.size++
	obj := t.rankings[id]
	n := t.root
	var distToParent int32
	for !n.leaf {
		// Choose the child whose routing object is closest among those whose
		// covering radius already contains the object; otherwise the child
		// needing the least radius enlargement (classic M-tree heuristic).
		best, bestDist, bestEnlarge := -1, int32(0), int32(1<<30)
		bestCovered := false
		for i := range n.entries {
			e := &n.entries[i]
			d := int32(ev.Distance(obj, t.rankings[e.id]))
			covered := d <= e.radius
			switch {
			case covered && (!bestCovered || d < bestDist):
				best, bestDist, bestCovered = i, d, true
			case !covered && !bestCovered:
				if enl := d - e.radius; enl < bestEnlarge {
					best, bestDist, bestEnlarge = i, d, enl
				}
			}
		}
		e := &n.entries[best]
		if bestDist > e.radius {
			e.radius = bestDist // enlarge covering radius
		}
		distToParent = bestDist
		n = e.child
	}
	n.entries = append(n.entries, entry{id: id, distPar: distToParent})
	if len(n.entries) > t.capacity {
		t.split(n, ev)
	}
}

// split overflows node n into two nodes, promoting two routing objects and
// partitioning entries by generalized hyperplane.
func (t *Tree) split(n *node, ev *metric.Evaluator) {
	// mM_RAD promotion over a candidate sample: try a bounded number of
	// pairs, keep the pair minimizing the larger covering radius.
	m := len(n.entries)
	type cand struct{ a, b int }
	var cands []cand
	const maxPairs = 48
	if m*(m-1)/2 <= maxPairs {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				cands = append(cands, cand{i, j})
			}
		}
	} else {
		// Deterministic sample: stride through the pair space.
		step := m*(m-1)/2/maxPairs + 1
		idx := 0
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if idx%step == 0 {
					cands = append(cands, cand{i, j})
				}
				idx++
			}
		}
	}
	// Pairwise distances from each candidate routing object to all entries.
	distTo := func(i int) []int32 {
		ds := make([]int32, m)
		for j := range n.entries {
			ds[j] = int32(ev.Distance(t.rankings[n.entries[i].id], t.rankings[n.entries[j].id]))
		}
		return ds
	}
	distCache := make(map[int][]int32)
	rowsOf := func(i int) []int32 {
		if r, ok := distCache[i]; ok {
			return r
		}
		r := distTo(i)
		distCache[i] = r
		return r
	}
	bestA, bestB := 0, 1
	bestCost := int32(1 << 30)
	for _, c := range cands {
		da, db := rowsOf(c.a), rowsOf(c.b)
		var ra, rb int32
		for j := 0; j < m; j++ {
			if da[j] <= db[j] {
				if da[j] > ra {
					ra = da[j]
				}
			} else if db[j] > rb {
				rb = db[j]
			}
		}
		cost := ra
		if rb > cost {
			cost = rb
		}
		if cost < bestCost {
			bestCost, bestA, bestB = cost, c.a, c.b
		}
	}
	da, db := rowsOf(bestA), rowsOf(bestB)
	left := &node{leaf: n.leaf}
	right := &node{leaf: n.leaf}
	var ra, rb int32
	// Ties alternate sides: with duplicate-heavy collections the two
	// routing objects can be identical rankings, making every comparison a
	// tie — strict "≤ goes left" would then produce an empty right node.
	tieToLeft := true
	for j := 0; j < m; j++ {
		e := n.entries[j]
		goLeft := da[j] < db[j]
		if da[j] == db[j] {
			goLeft = tieToLeft
			tieToLeft = !tieToLeft
		}
		if goLeft {
			e.distPar = da[j]
			left.entries = append(left.entries, e)
			if r := da[j] + e.radius; r > ra {
				ra = r
			}
		} else {
			e.distPar = db[j]
			right.entries = append(right.entries, e)
			if r := db[j] + e.radius; r > rb {
				rb = r
			}
		}
	}
	for i := range left.entries {
		if c := left.entries[i].child; c != nil {
			c.parent, c.parentEntry = left, i
		}
	}
	for i := range right.entries {
		if c := right.entries[i].child; c != nil {
			c.parent, c.parentEntry = right, i
		}
	}
	idA := n.entries[bestA].id
	idB := n.entries[bestB].id

	if n.parent == nil {
		// Grow a new root.
		root := &node{leaf: false}
		root.entries = []entry{
			{id: idA, radius: ra, child: left},
			{id: idB, radius: rb, child: right},
		}
		left.parent, left.parentEntry = root, 0
		right.parent, right.parentEntry = root, 1
		t.root = root
		return
	}
	parent := n.parent
	pe := parent.entries[n.parentEntry]
	// Replace the parent entry for n with the entry for left, append right.
	dParA := int32(ev.Distance(t.rankings[idA], t.rankings[parentRouting(parent, pe)]))
	dParB := int32(ev.Distance(t.rankings[idB], t.rankings[parentRouting(parent, pe)]))
	parent.entries[n.parentEntry] = entry{id: idA, distPar: dParA, radius: ra, child: left}
	left.parent, left.parentEntry = parent, n.parentEntry
	parent.entries = append(parent.entries, entry{id: idB, distPar: dParB, radius: rb, child: right})
	right.parent, right.parentEntry = parent, len(parent.entries)-1
	// distPar of split entries is relative to the grandparent routing object
	// only when parent is not the root; recompute lazily is complex, so we
	// recompute both against the actual parent routing object, which is what
	// parentRouting returned. (For the root, distPar is unused.)
	if len(parent.entries) > t.capacity {
		t.split(parent, ev)
	}
}

// parentRouting returns the routing object id that governs node entries'
// distPar values: the routing object of the entry in the grandparent that
// points to parent; for the root there is none and distances to parent are
// unused, so any stable id works — we use the first entry's own id.
func parentRouting(parent *node, selfEntry entry) ranking.ID {
	if parent.parent == nil {
		return selfEntry.id
	}
	return parent.parent.entries[parent.parentEntry].id
}

// RangeSearch returns ids of all indexed rankings within radius of q.
func (t *Tree) RangeSearch(q ranking.Ranking, radius int, ev *metric.Evaluator) []ranking.ID {
	if ev == nil {
		ev = metric.New(nil)
	}
	var out []ranking.ID
	if t.root == nil || radius < 0 {
		return out
	}
	t.search(t.root, q, int32(radius), -1, ev, &out)
	return out
}

// search descends with dQParent = d(q, routing object of n's parent entry),
// or -1 at the root where no parent distance is available.
func (t *Tree) search(n *node, q ranking.Ranking, radius, dQParent int32, ev *metric.Evaluator, out *[]ranking.ID) {
	for i := range n.entries {
		e := &n.entries[i]
		// Pruning 1: triangle inequality via the precomputed parent distance
		// avoids computing d(q, e) at all.
		if dQParent >= 0 {
			diff := dQParent - e.distPar
			if diff < 0 {
				diff = -diff
			}
			if diff > radius+e.radius {
				continue
			}
		}
		d := int32(ev.Distance(q, t.rankings[e.id]))
		if n.leaf {
			if d <= radius {
				*out = append(*out, e.id)
			}
			continue
		}
		// Pruning 2: subtree ball does not intersect the query ball.
		if d > radius+e.radius {
			continue
		}
		t.search(e.child, q, radius, d, ev, out)
	}
}

// Stats describes the tree shape.
type Stats struct {
	Height    int
	Nodes     int
	Leaves    int
	Entries   int
	AvgFill   float64
	MaxRadius int
}

// Stats computes shape statistics.
func (t *Tree) Stats() Stats {
	var s Stats
	if t.root == nil {
		return s
	}
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		s.Nodes++
		s.Entries += len(n.entries)
		if depth+1 > s.Height {
			s.Height = depth + 1
		}
		if n.leaf {
			s.Leaves++
			return
		}
		for i := range n.entries {
			if r := int(n.entries[i].radius); r > s.MaxRadius {
				s.MaxRadius = r
			}
			walk(n.entries[i].child, depth+1)
		}
	}
	walk(t.root, 0)
	s.AvgFill = float64(s.Entries) / float64(s.Nodes)
	return s
}

// CheckInvariants validates covering radii and leaf depth uniformity;
// used by tests. It returns an error describing the first violation.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return nil
	}
	leafDepth := -1
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("mtree: leaves at depths %d and %d", leafDepth, depth)
			}
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.child == nil {
				return fmt.Errorf("mtree: internal entry %d without child", e.id)
			}
			// Covering radius must bound every object in the subtree.
			routing := t.rankings[e.id]
			var verify func(m *node) error
			verify = func(m *node) error {
				for j := range m.entries {
					f := &m.entries[j]
					if m.leaf {
						if d := ranking.Footrule(routing, t.rankings[f.id]); int32(d) > e.radius {
							return fmt.Errorf("mtree: object %d at %d outside radius %d of routing %d",
								f.id, d, e.radius, e.id)
						}
						continue
					}
					if err := verify(f.child); err != nil {
						return err
					}
				}
				return nil
			}
			if err := verify(e.child); err != nil {
				return err
			}
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0)
}
