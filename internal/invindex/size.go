package invindex

// SizeBytes estimates the serialized footprint of the index. The plain
// variant stores per posting only the ranking id (4 bytes); the augmented
// variant adds the rank byte (padded to 2 for alignment in the on-disk
// format). Both include the complete rankings payload and per-list headers,
// mirroring Table 6's "Plain Inverted Index" vs "Augmented Inverted Index".
func (idx *Index) SizeBytes(augmented bool) int64 {
	var sz int64 = 16
	sz += int64(len(idx.rankings)) * int64(4*idx.k)
	per := int64(4)
	if augmented {
		per = 6
	}
	for _, l := range idx.lists {
		sz += 8 // item id + list length
		sz += per * int64(len(l))
	}
	return sz
}

// SizeBytesMinimal estimates the oracle's materialized-list footprint.
func (m *Minimal) SizeBytes() int64 {
	var sz int64 = 16
	sz += int64(len(m.rankings)) * int64(4*m.k)
	for key, l := range m.byKey {
		sz += int64(len(key)) + 8 + 4*int64(len(l))
	}
	return sz
}
