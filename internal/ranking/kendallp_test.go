package ranking

import (
	"math/rand"
	"testing"
)

func TestKendallTauPOptimisticMatchesKendallTau(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		a := randomRanking(rng, 6, 18)
		b := randomRanking(rng, 6, 18)
		if got, want := KendallTauP(a, b, 0), 2*KendallTau(a, b); got != want {
			t.Fatalf("p=0: %d != 2·K = %d", got, want)
		}
	}
}

func TestKendallTauPMonotoneInPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		a := randomRanking(rng, 7, 21)
		b := randomRanking(rng, 7, 21)
		k0 := KendallTauP(a, b, 0)
		k1 := KendallTauP(a, b, 1)
		k2 := KendallTauP(a, b, 2)
		if k0 > k1 || k1 > k2 {
			t.Fatalf("penalty not monotone: %d %d %d", k0, k1, k2)
		}
	}
}

func TestKendallTauPDisjoint(t *testing.T) {
	a := Ranking{1, 2, 3}
	b := Ranking{7, 8, 9}
	// Cases: all cross pairs discordant (9 pairs, counted by K), plus the
	// Case-4 pairs inside each side: 2·C(3,2) = 6 pairs at penalty p.
	if got := KendallTauP(a, b, 0); got != 2*9 {
		t.Fatalf("p=0 disjoint: %d", got)
	}
	if got := KendallTauP(a, b, 1); got != 2*9+6 {
		t.Fatalf("p=1/2 disjoint: %d", got)
	}
	if got := KendallTauP(a, b, 2); got != 2*9+12 {
		t.Fatalf("p=1 disjoint: %d", got)
	}
}

func TestKendallTauPSymmetricAndIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := randomRanking(rng, 6, 15)
		b := randomRanking(rng, 6, 15)
		for p := 0; p <= 2; p++ {
			if KendallTauP(a, b, p) != KendallTauP(b, a, p) {
				t.Fatalf("p=%d not symmetric", p)
			}
			if KendallTauP(a, a, p) != 0 {
				t.Fatalf("p=%d: K(a,a) != 0", p)
			}
		}
	}
}

// TestKendallTauPNeutralNearMetric: Fagin et al. prove K^(1/2) is a near
// metric — it satisfies a relaxed triangle inequality with constant 2. Our
// random search must not find a violation of that relaxed bound.
func TestKendallTauPNeutralNearMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		a := randomRanking(rng, 5, 12)
		b := randomRanking(rng, 5, 12)
		c := randomRanking(rng, 5, 12)
		ac := KendallTauP(a, c, 1)
		ab := KendallTauP(a, b, 1)
		bc := KendallTauP(b, c, 1)
		if ac > 2*(ab+bc) {
			t.Fatalf("relaxed triangle violated: %d > 2(%d+%d)", ac, ab, bc)
		}
	}
}

func TestKendallTauPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad penalty accepted")
		}
	}()
	KendallTauP(Ranking{1}, Ranking{2}, 3)
}
