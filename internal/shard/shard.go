// Package shard partitions a ranking collection across S independent
// sub-indices and fans every query out to all of them in parallel. It is
// the scale-out layer of the library: one shard per core turns the exact
// range query of the EDBT'15 structures into an embarrassingly parallel
// scatter-gather whose merge is a plain concatenation.
//
// Sharding is by contiguous ID range: shard i indexes the rankings
// [offset_i, offset_i + len_i) of the collection, so a shard-local result
// ID maps back to the global ID by adding the shard's offset, and because
// every index in this library returns results sorted by ID, concatenating
// the per-shard answers in shard order yields the globally ID-sorted
// result set — byte-identical to querying one unsharded index over the
// whole collection.
package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"topk/internal/ranking"
)

// Index is the structural subset of the public topk.Index interface the
// sharding layer needs; every index kind of package topk satisfies it, and
// so does Sharded itself (shards can in principle be nested).
type Index interface {
	// Search returns all indexed rankings within normalized Footrule
	// distance theta of q, sorted by ID, with exact distances.
	Search(q ranking.Ranking, theta float64) ([]ranking.Result, error)
	// Len returns the number of indexed rankings.
	Len() int
	// K returns the ranking size.
	K() int
	// DistanceCalls returns the cumulative number of Footrule evaluations.
	DistanceCalls() uint64
}

// Mutable is the mutation interface of sub-indices that support dynamic
// collections (package topk's InvertedIndex, CoarseIndex and HybridIndex).
// When every sub-index implements it, the Sharded wrapper routes Insert,
// Delete and Update to the owning shard; see (*Sharded).Mutable.
type Mutable interface {
	Index
	// Insert adds a ranking and returns its new shard-local ID.
	Insert(r ranking.Ranking) (ranking.ID, error)
	// Delete removes the ranking with the given shard-local ID.
	Delete(id ranking.ID) error
	// Update replaces the ranking under an existing shard-local ID.
	Update(id ranking.ID, r ranking.Ranking) error
}

// Builder constructs one sub-index over a contiguous slice of the
// collection. The slice aliases the caller's collection; builders must not
// modify it. For mutable index kinds the slice may contain nil entries —
// tombstoned slots of a snapshot — which the builder must map to retired
// ids (see topk.NewInvertedIndexFromSlots).
type Builder func(rankings []ranking.Ranking) (Index, error)

// Sharded is a collection partitioned across independent sub-indices.
// All methods are safe for concurrent use (given sub-indices with
// concurrency-safe Search and mutations, which every topk index provides:
// shards serialize their own mutations internally, and the routing state
// below — offsets, slot sizes — is immutable after New because inserts only
// ever extend the open-ended id range of the last shard).
type Sharded struct {
	shards  []Index
	offsets []ranking.ID // global ID of shard i's first ranking
	sizes   []int        // initial slot count of shard i (id-range width)
	hists   []*Histogram // per-shard query latency
	fanout  Histogram    // scatter phase: dispatch until the slowest shard answers
	merge   Histogram    // gather phase: concatenating per-shard answers
	k       int
	// snapMu is the cross-shard consistency point of Slots: mutations hold
	// it shared (they still run concurrently, serialized only within their
	// owning shard), Slots holds it exclusively so the per-shard slot views
	// it concatenates form one cut of the mutation history instead of a
	// state that never existed. Searches never touch it.
	snapMu sync.RWMutex
}

// New partitions the collection into numShards contiguous, near-equal
// chunks and builds one sub-index per chunk with build, in parallel.
// numShards ≤ 0 selects GOMAXPROCS; the shard count is capped at the
// collection size.
func New(rankings []ranking.Ranking, numShards int, build Builder) (*Sharded, error) {
	if len(rankings) == 0 {
		return nil, fmt.Errorf("shard: empty collection")
	}
	if numShards <= 0 {
		numShards = runtime.GOMAXPROCS(0)
	}
	if numShards > len(rankings) {
		numShards = len(rankings)
	}
	n := len(rankings)
	k := 0
	for _, r := range rankings {
		if r != nil {
			k = r.K()
			break
		}
	}
	s := &Sharded{
		shards:  make([]Index, numShards),
		offsets: make([]ranking.ID, numShards),
		sizes:   make([]int, numShards),
		hists:   make([]*Histogram, numShards),
		k:       k,
	}
	base, rem := n/numShards, n%numShards
	errs := make([]error, numShards)
	var wg sync.WaitGroup
	lo := 0
	for i := 0; i < numShards; i++ {
		size := base
		if i < rem {
			size++
		}
		chunk := rankings[lo : lo+size]
		s.offsets[i] = ranking.ID(lo)
		s.sizes[i] = size
		s.hists[i] = &Histogram{}
		wg.Add(1)
		go func(i int, chunk []ranking.Ranking) {
			defer wg.Done()
			s.shards[i], errs[i] = build(chunk)
		}(i, chunk)
		lo += size
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return s, nil
}

// NewEmpty builds a sharded index over an empty collection for dynamically
// created collections that grow through Insert: numShards sub-indices are
// built from empty slot views (numShards ≤ 0 selects GOMAXPROCS), every
// shard starts with a zero-width id range, and — as always — inserts extend
// the open-ended range of the last shard. The ranking size is undefined
// until the first insert: K reports 0 and then the size of whatever the
// collection holds. Only slot-capable (mutable) builders make sense here;
// a builder that rejects an empty slice fails NewEmpty the same way.
func NewEmpty(numShards int, build Builder) (*Sharded, error) {
	if numShards <= 0 {
		numShards = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{
		shards:  make([]Index, numShards),
		offsets: make([]ranking.ID, numShards),
		sizes:   make([]int, numShards),
		hists:   make([]*Histogram, numShards),
	}
	for i := range s.shards {
		ix, err := build(nil)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.shards[i] = ix
		s.hists[i] = &Histogram{}
	}
	return s, nil
}

// NumShards returns the number of sub-indices.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Len implements Index as the live ranking count summed over all shards, so
// it stays accurate under Insert/Delete/Update.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// K implements Index. A collection built empty (NewEmpty) has no ranking
// size until its first insert: K reports 0 while every shard is empty and
// the size of the first shard that holds a ranking after.
func (s *Sharded) K() int {
	if s.k != 0 {
		return s.k
	}
	for _, sh := range s.shards {
		if k := sh.K(); k != 0 {
			return k
		}
	}
	return 0
}

// Mutable reports whether every sub-index supports mutations; only then do
// Insert, Delete and Update route.
func (s *Sharded) Mutable() bool {
	for _, sh := range s.shards {
		if _, ok := sh.(Mutable); !ok {
			return false
		}
	}
	return true
}

// ErrImmutable is returned by the mutation methods when a sub-index kind
// does not support them.
var ErrImmutable = errors.New("shard: index kind does not support mutation")

// Insert adds a ranking and returns its global ID. All inserts route to the
// last shard: its id range is the only open-ended one, so the contiguous
// ID-range invariant — and with it the concatenation merge of Search — is
// preserved no matter how the collection grows.
func (s *Sharded) Insert(r ranking.Ranking) (ranking.ID, error) {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	last := len(s.shards) - 1
	m, ok := s.shards[last].(Mutable)
	if !ok {
		return 0, ErrImmutable
	}
	local, err := m.Insert(r)
	if err != nil {
		return 0, fmt.Errorf("shard %d: %w", last, err)
	}
	return s.offsets[last] + local, nil
}

// Delete removes the ranking with the given global ID, routing to the
// owning shard.
func (s *Sharded) Delete(id ranking.ID) error {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	i, local, err := s.owner(id)
	if err != nil {
		return err
	}
	m, ok := s.shards[i].(Mutable)
	if !ok {
		return ErrImmutable
	}
	if err := m.Delete(local); err != nil {
		return fmt.Errorf("id %d (shard %d): %w", id, i, err)
	}
	return nil
}

// Update replaces the ranking stored under an existing global ID, routing
// to the owning shard. The ID stays stable.
func (s *Sharded) Update(id ranking.ID, r ranking.Ranking) error {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	i, local, err := s.owner(id)
	if err != nil {
		return err
	}
	m, ok := s.shards[i].(Mutable)
	if !ok {
		return ErrImmutable
	}
	if err := m.Update(local, r); err != nil {
		return fmt.Errorf("id %d (shard %d): %w", id, i, err)
	}
	return nil
}

// Compact asks every sub-index that supports it to rebuild over its
// surviving rankings, discarding tombstones. Global IDs are preserved.
func (s *Sharded) Compact() error {
	for i, sh := range s.shards {
		if c, ok := sh.(interface{ Compact() error }); ok {
			if err := c.Compact(); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	return nil
}

// Slots concatenates the per-shard external-id slot views into the global
// one: slots[id] is the live ranking under global id, nil a retired id.
// Feeding the result to New with the same builder and shard count restores
// an equivalent sharded index with all ids preserved (non-last shards never
// grow, so per-shard slot ranges stay contiguous). Returns false when a
// sub-index kind exposes no slot view.
//
// The view is a consistent cut: Slots quiesces mutations (exclusive
// snapMu) while it walks the shards, so a snapshot racing concurrent
// Insert/Delete/Update reflects exactly the mutations that completed
// before some single point in time — never a cross-shard mix where a later
// mutation is visible but an earlier one is not.
func (s *Sharded) Slots() ([]ranking.Ranking, bool) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	var out []ranking.Ranking
	for _, sh := range s.shards {
		v, ok := sh.(interface{ Slots() []ranking.Ranking })
		if !ok {
			return nil, false
		}
		out = append(out, v.Slots()...)
	}
	return out, true
}

// owner maps a global ID to (shard, shard-local ID). IDs beyond the last
// shard's initial range still belong to the last shard (inserts extend it);
// whether the local id is actually assigned is decided by the sub-index.
func (s *Sharded) owner(id ranking.ID) (int, ranking.ID, error) {
	for i := 0; i < len(s.shards)-1; i++ {
		if int(id-s.offsets[i]) < s.sizes[i] {
			return i, id - s.offsets[i], nil
		}
	}
	last := len(s.shards) - 1
	if id < s.offsets[last] {
		// Unreachable with contiguous ranges; guard anyway.
		return 0, 0, fmt.Errorf("shard: id %d outside every shard range", id)
	}
	return last, id - s.offsets[last], nil
}

// DistanceCalls implements Index as the sum over all shards.
func (s *Sharded) DistanceCalls() uint64 {
	var t uint64
	for _, sh := range s.shards {
		t += sh.DistanceCalls()
	}
	return t
}

// Rebuilds sums the epoch-rebuild counters of the sub-indices that expose
// one (the hybrid engine's delta-overlay rebuilds). Immutable kinds
// contribute 0. Together with a mutation counter this forms a cheap
// collection generation: any acked mutation or installed rebuild changes it.
func (s *Sharded) Rebuilds() uint64 {
	var t uint64
	for _, sh := range s.shards {
		if r, ok := sh.(interface{ Rebuilds() uint64 }); ok {
			t += r.Rebuilds()
		}
	}
	return t
}

// Shard returns the i-th sub-index and the global ID of its first ranking.
func (s *Sharded) Shard(i int) (Index, ranking.ID) { return s.shards[i], s.offsets[i] }

// Search implements Index: the query is fanned out to every shard in
// parallel, shard-local IDs are remapped to global IDs, and the per-shard
// answers are concatenated in shard order — which, with contiguous ID-range
// sharding and ID-sorted per-shard results, is already the globally sorted
// result set.
func (s *Sharded) Search(q ranking.Ranking, theta float64) ([]ranking.Result, error) {
	return s.SearchContext(context.Background(), q, theta)
}

// SearchContext is Search with cancellation: ctx is checked on entry and
// before each per-shard task, so a request whose client has gone away (or
// whose deadline has passed) stops scheduling shard work. A sub-index search
// that has already started runs to completion — the cancellation grain is
// one shard task, bounded by the shard size. Returns ctx.Err() (possibly
// wrapped) when the search was cut short.
func (s *Sharded) SearchContext(ctx context.Context, q ranking.Ranking, theta float64) ([]ranking.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	parts := make([][]ranking.Result, len(s.shards))
	errs := make([]error, len(s.shards))
	fanStart := time.Now()
	var wg sync.WaitGroup
	for i := 1; i < len(s.shards); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			parts[i], errs[i] = s.searchShard(i, q, theta)
		}(i)
	}
	parts[0], errs[0] = s.searchShard(0, q, theta) // shard 0 on the caller's goroutine
	wg.Wait()
	s.fanout.Observe(time.Since(fanStart))
	mergeStart := time.Now()
	defer func() { s.merge.Observe(time.Since(mergeStart)) }()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	total := 0
	for i := range parts {
		total += len(parts[i])
	}
	if total == 0 {
		return nil, nil
	}
	out := make([]ranking.Result, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// firstError aggregates per-shard (or per-query) errors, preferring a real
// failure over a cancellation: when the context dies mid-fan-out some tasks
// report bare ctx.Err(), and surfacing that instead of the failure that
// actually aborted the work would mask it.
func firstError(errs []error) error {
	var ctxErr error
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if ctxErr == nil {
				ctxErr = err
			}
		default:
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return ctxErr
}

// searchShard queries one shard, remaps IDs, and records latency.
func (s *Sharded) searchShard(i int, q ranking.Ranking, theta float64) ([]ranking.Result, error) {
	start := time.Now()
	res, err := s.shards[i].Search(q, theta)
	s.hists[i].Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	if off := s.offsets[i]; off != 0 {
		for j := range res {
			res[j].ID += off
		}
	}
	return res, nil
}

// SearchBatch answers many queries at the same threshold, running up to
// GOMAXPROCS queries concurrently (each of which fans out to all shards).
// The i-th result slice answers queries[i].
func (s *Sharded) SearchBatch(queries []ranking.Ranking, theta float64) ([][]ranking.Result, error) {
	return s.SearchBatchContext(context.Background(), queries, theta)
}

// SearchBatchContext is SearchBatch with cancellation: the context is
// checked between batch members, so a dead client stops the remaining
// queries instead of burning through the whole batch.
func (s *Sharded) SearchBatchContext(ctx context.Context, queries []ranking.Ranking, theta float64) ([][]ranking.Result, error) {
	return s.searchMany(ctx, queries, func(int) float64 { return theta })
}

// SearchBatchThetas answers many queries, each at its own threshold — the
// mixed-radius fallback of the batch API. thetas[i] is the threshold of
// queries[i].
func (s *Sharded) SearchBatchThetas(queries []ranking.Ranking, thetas []float64) ([][]ranking.Result, error) {
	return s.SearchBatchThetasContext(context.Background(), queries, thetas)
}

// SearchBatchThetasContext is SearchBatchThetas with cancellation between
// batch members; see SearchBatchContext.
func (s *Sharded) SearchBatchThetasContext(ctx context.Context, queries []ranking.Ranking, thetas []float64) ([][]ranking.Result, error) {
	if len(thetas) != len(queries) {
		return nil, fmt.Errorf("shard: %d thetas for %d queries", len(thetas), len(queries))
	}
	return s.searchMany(ctx, queries, func(i int) float64 { return thetas[i] })
}

// searchMany runs independent searches for a query batch with a worker pool.
// The first failure cancels the pool: queued members are never started and
// in-flight members stop scheduling shard tasks, so a batch does not keep
// burning cores after its outcome is already decided — whether the cause is
// a query error or the caller's context dying.
func (s *Sharded) searchMany(ctx context.Context, queries []ranking.Ranking, thetaFor func(int) float64) ([][]ranking.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]ranking.Result, len(queries))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		failOnce sync.Once
		firstErr error
	)
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			if err := cctx.Err(); err != nil {
				fail(err)
				break
			}
			res, err := s.SearchContext(cctx, q, thetaFor(i))
			if err != nil {
				fail(fmt.Errorf("query %d: %w", i, err))
				break
			}
			out[i] = res
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if cctx.Err() != nil {
						continue // drain: the batch is already failed or canceled
					}
					res, err := s.SearchContext(cctx, queries[i], thetaFor(i))
					if err != nil {
						fail(fmt.Errorf("query %d: %w", i, err))
						continue
					}
					out[i] = res
				}
			}()
		}
	dispatch:
		for i := range queries {
			select {
			case next <- i:
			case <-cctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// BatchIndex is the optional sub-index interface behind SearchBatchShared:
// kinds that can answer a whole uniform-threshold batch with shared
// filtering work (topk.InvertedIndex via the Section 8 batch processor).
type BatchIndex interface {
	SearchBatch(queries []ranking.Ranking, theta float64) ([][]ranking.Result, error)
}

// SearchBatchShared answers a uniform-threshold batch with per-shard
// shared-candidate processing: the whole batch is handed to every shard's
// BatchIndex in parallel, so each shard clusters the batch once and shares
// index probes across its members, and the per-shard answers concatenate in
// shard order exactly like Search's merge. Returns ok=false (and does no
// work) when a sub-index kind does not implement BatchIndex — callers fall
// back to SearchBatch.
func (s *Sharded) SearchBatchShared(queries []ranking.Ranking, theta float64) (res [][]ranking.Result, ok bool, err error) {
	return s.SearchBatchSharedContext(context.Background(), queries, theta)
}

// SearchBatchSharedContext is SearchBatchShared with cancellation: ctx is
// checked on entry and before each per-shard batch task. A shard's shared
// batch that has already started runs to completion (the cancellation grain
// is one shard's whole batch — coarser than SearchBatchContext's per-query
// grain, the price of shared-candidate processing).
func (s *Sharded) SearchBatchSharedContext(ctx context.Context, queries []ranking.Ranking, theta float64) (res [][]ranking.Result, ok bool, err error) {
	batchers := make([]BatchIndex, len(s.shards))
	for i, sh := range s.shards {
		b, isBatcher := sh.(BatchIndex)
		if !isBatcher {
			return nil, false, nil
		}
		batchers[i] = b
	}
	if err := ctx.Err(); err != nil {
		return nil, true, err
	}
	parts := make([][][]ranking.Result, len(s.shards))
	errs := make([]error, len(s.shards))
	fanStart := time.Now()
	var wg sync.WaitGroup
	for i := 1; i < len(s.shards); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			parts[i], errs[i] = s.batchShard(i, batchers[i], queries, theta)
		}(i)
	}
	parts[0], errs[0] = s.batchShard(0, batchers[0], queries, theta)
	wg.Wait()
	s.fanout.Observe(time.Since(fanStart))
	mergeStart := time.Now()
	defer func() { s.merge.Observe(time.Since(mergeStart)) }()
	if err := firstError(errs); err != nil {
		return nil, true, err
	}
	out := make([][]ranking.Result, len(queries))
	for qi := range queries {
		total := 0
		for _, p := range parts {
			total += len(p[qi])
		}
		if total == 0 {
			continue
		}
		merged := make([]ranking.Result, 0, total)
		for _, p := range parts {
			merged = append(merged, p[qi]...)
		}
		out[qi] = merged
	}
	return out, true, nil
}

// batchShard runs one shard's shared batch and remaps ids to global. The
// whole batch is one histogram observation — the per-op latency an operator
// sees for the shared-candidate path.
func (s *Sharded) batchShard(i int, b BatchIndex, queries []ranking.Ranking, theta float64) ([][]ranking.Result, error) {
	start := time.Now()
	res, err := b.SearchBatch(queries, theta)
	s.hists[i].Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	if off := s.offsets[i]; off != 0 {
		for qi := range res {
			for j := range res[qi] {
				res[qi][j].ID += off
			}
		}
	}
	return res, nil
}

// ShardStats is a point-in-time view of one shard. Len is the live ranking
// count; Tombstones counts deleted rankings awaiting compaction (always 0
// for immutable kinds). Delta and Rebuilds describe the hybrid engine's
// mutation overlay: rankings waiting in the delta region for the next epoch
// rebuild, and how many rebuilds the shard has installed.
type ShardStats struct {
	Shard         int               `json:"shard"`
	Offset        ranking.ID        `json:"offset"`
	Len           int               `json:"len"`
	Tombstones    int               `json:"tombstones,omitempty"`
	Delta         int               `json:"delta,omitempty"`
	Rebuilds      uint64            `json:"rebuilds,omitempty"`
	DistanceCalls uint64            `json:"distanceCalls"`
	Latency       HistogramSnapshot `json:"latency"`
}

// Timings snapshots the cross-shard phase histograms: fanout covers the
// scatter phase of Search/SearchBatchShared (dispatch until the slowest
// shard answers), merge the gather phase (concatenating per-shard answers).
func (s *Sharded) Timings() (fanout, merge HistogramSnapshot) {
	return s.fanout.Snapshot(), s.merge.Snapshot()
}

// Stats snapshots every shard's live size, tombstone backlog, delta-overlay
// and rebuild counters, distance-call counter and query latency histogram.
func (s *Sharded) Stats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardStats{
			Shard:         i,
			Offset:        s.offsets[i],
			Len:           sh.Len(),
			DistanceCalls: sh.DistanceCalls(),
			Latency:       s.hists[i].Snapshot(),
		}
		if t, ok := sh.(interface{ Tombstones() int }); ok {
			out[i].Tombstones = t.Tombstones()
		}
		if d, ok := sh.(interface{ DeltaLen() int }); ok {
			out[i].Delta = d.DeltaLen()
		}
		if r, ok := sh.(interface{ Rebuilds() uint64 }); ok {
			out[i].Rebuilds = r.Rebuilds()
		}
	}
	return out
}
