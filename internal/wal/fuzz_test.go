package wal

import (
	"os"
	"testing"

	"topk/internal/ranking"
)

// FuzzWALReplay drives the two recovery invariants the serving stack
// depends on:
//
//  1. No input panics the reader: data is written verbatim as a segment
//     file and replayed — whatever garbage it holds, Replay must return,
//     not crash, and must never fabricate oversized allocations.
//  2. Ack-then-recover: a log of records derived from data, truncated at
//     an arbitrary byte offset (including mid-record), must replay to an
//     exact prefix of what was appended — fully synced records below the
//     cut are never lost, torn bytes never decode into phantom records.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0x4c, 0x57, 0x4b, 0x54}, uint16(3))
	f.Add([]byte("TKWL garbage that is not a log"), uint16(11))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint16(200))
	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		// Invariant 1: arbitrary bytes as a segment file must not panic.
		raw := t.TempDir()
		if err := os.WriteFile(segmentPath(raw, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Corruption errors are fine; panics and bogus records are not.
		Replay(raw, 0, func(r Record) error {
			if r.Op == OpDelete && r.Ranking != nil {
				t.Fatal("decoded delete with ranking")
			}
			if len(r.Ranking) > 255 {
				t.Fatal("decoded oversized ranking")
			}
			return nil
		})

		// Invariant 2: build a valid log from data-derived records, truncate
		// at cut, and require a strict prefix replay.
		dir := t.TempDir()
		l, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var want []Record
		nextID := ranking.ID(0)
		for i := 0; i+3 <= len(data) && len(want) < 64; i += 3 {
			var rec Record
			switch data[i] % 3 {
			case 0:
				rec = Record{Op: OpInsert, ID: nextID,
					Ranking: ranking.Ranking{ranking.Item(data[i+1]), ranking.Item(uint32(data[i+2]) + 256)}}
				nextID++
			case 1:
				rec = Record{Op: OpDelete, ID: ranking.ID(data[i+1])}
			default:
				rec = Record{Op: OpUpdate, ID: ranking.ID(data[i+1]),
					Ranking: ranking.Ranking{ranking.Item(data[i+2]), ranking.Item(uint32(data[i+1]) + 512)}}
			}
			if err := l.Append(rec); err != nil {
				t.Fatalf("append: %v", err)
			}
			want = append(want, rec)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		seg := segmentPath(dir, 1)
		full, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		n := int(cut) % (len(full) + 1)
		if err := os.WriteFile(seg, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		if _, err := Replay(dir, 0, func(r Record) error {
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("replay of truncated valid log: %v", err)
		}
		if len(got) > len(want) {
			t.Fatalf("replay fabricated records: %d > %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Op != want[i].Op || got[i].ID != want[i].ID || len(got[i].Ranking) != len(want[i].Ranking) {
				t.Fatalf("record %d diverged: got %+v want %+v", i, got[i], want[i])
			}
			for j := range got[i].Ranking {
				if got[i].Ranking[j] != want[i].Ranking[j] {
					t.Fatalf("record %d item %d diverged", i, j)
				}
			}
		}
		// Every record whose frame lies wholly below the cut must survive:
		// the log was fully synced before truncation.
		whole := (n - headerSize) // record bytes available
		if whole < 0 {
			whole = 0
		}
		frameLen := func(r Record) int { return 8 + 7 + 4*len(r.Ranking) }
		mustHave := 0
		acc := 0
		for _, r := range want {
			acc += frameLen(r)
			if acc <= whole {
				mustHave++
			}
		}
		if len(got) < mustHave {
			t.Fatalf("ack-then-lose: %d records below the cut, replay returned %d", mustHave, len(got))
		}
	})
}
