package topk

import (
	"topk/internal/coarse"
	"topk/internal/invindex"
	"topk/internal/ranking"
)

// Insert adds a ranking to the indexed collection and returns its new ID.
// The inverted index supports incremental maintenance natively (posting
// lists stay id-sorted because ids grow monotonically); the internal query
// state is re-created so subsequent Search calls see the new ranking.
func (ii *InvertedIndex) Insert(r Ranking) (ID, error) {
	ii.mu.Lock()
	defer ii.mu.Unlock()
	id, err := ii.idx.Insert(r)
	if err != nil {
		return 0, err
	}
	ii.search = invindex.NewSearcher(ii.idx)
	return id, nil
}

// Insert adds a ranking to the coarse index and returns its new ID. Per
// Section 4.1's clustering semantics, the ranking joins the first existing
// partition whose medoid is within θC (found through the medoid inverted
// index with Lemma 1's relaxation — a zero-radius query at threshold θC);
// otherwise it becomes the medoid of a fresh singleton partition. The
// partition invariant d(medoid, member) ≤ θC is preserved exactly, so all
// query-time guarantees carry over.
func (c *CoarseIndex) Insert(r Ranking) (ID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if r.K() != c.k {
		return 0, ranking.ErrSizeMismatch
	}
	id, err := c.idx.Insert(r, c.ev)
	if err != nil {
		return 0, err
	}
	// The medoid set may have grown; rebind the searcher.
	c.search = coarse.NewSearcher(c.idx)
	return id, nil
}
