package persist

import "sync"

// Dirty bits of one slot, relative to the last captured checkpoint.
const (
	// DirtyFlag: the slot's liveness byte changed (insert, delete).
	DirtyFlag = uint8(1) << 0
	// DirtyArena: the slot's ranking bytes changed (insert, update). A
	// delete leaves the arena bytes stale on purpose — the flag page says
	// they are meaningless, so the arena page can be reused unchanged.
	DirtyArena = uint8(1) << 1
)

// DirtySet is a captured batch of slot-level dirt. All marks every page
// dirty regardless of Slots — the safe answer whenever provenance is
// uncertain.
type DirtySet struct {
	All   bool
	Slots map[int]uint8
}

// Pages resolves the set to logical pages of l.
func (d *DirtySet) Pages(l Layout) map[int]bool {
	m := make(map[int]bool)
	if d == nil {
		return m
	}
	if d.All {
		for p := 0; p < l.Pages(); p++ {
			m[p] = true
		}
		return m
	}
	for s, bits := range d.Slots {
		if s < 0 || s >= l.Slots {
			continue
		}
		if bits&DirtyFlag != 0 {
			m[l.flagPage(s)] = true
		}
		if bits&DirtyArena != 0 && l.K > 0 {
			p, _ := l.arenaPos(s)
			m[p] = true
		}
	}
	return m
}

// SlotTracker accumulates the slots a collection dirtied since the last
// checkpoint capture. The serving path marks under its own mutation lock,
// but stats readers poll concurrently, so every method locks.
type SlotTracker struct {
	mu    sync.Mutex
	all   bool
	slots map[int]uint8
}

// NewSlotTracker returns an empty tracker: nothing dirty. Callers that
// cannot account for the current state's provenance (no previous v3
// checkpoint) must not rely on it — the pager independently falls back to a
// full rewrite when it has no previous footer.
func NewSlotTracker() *SlotTracker {
	return &SlotTracker{slots: make(map[int]uint8)}
}

// MarkAll poisons the tracker: the next capture rewrites every page.
func (t *SlotTracker) MarkAll() {
	t.mu.Lock()
	t.all = true
	t.mu.Unlock()
}

func (t *SlotTracker) mark(slot int, bits uint8) {
	if slot < 0 {
		return
	}
	t.mu.Lock()
	t.slots[slot] |= bits
	t.mu.Unlock()
}

// MarkInsert records a new live ranking in slot (flag and arena change).
func (t *SlotTracker) MarkInsert(slot int) { t.mark(slot, DirtyFlag|DirtyArena) }

// MarkDelete records a tombstoning (only the flag byte changes).
func (t *SlotTracker) MarkDelete(slot int) { t.mark(slot, DirtyFlag) }

// MarkUpdate records an in-place replacement (only the arena row changes).
func (t *SlotTracker) MarkUpdate(slot int) { t.mark(slot, DirtyArena) }

// Capture returns the accumulated dirt and resets the tracker. The caller
// owns the returned set; if the checkpoint it feeds fails, MergeBack must
// restore it or the dirt is lost to the next incremental checkpoint.
func (t *SlotTracker) Capture() *DirtySet {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &DirtySet{All: t.all, Slots: t.slots}
	t.all = false
	t.slots = make(map[int]uint8)
	return d
}

// MergeBack unions a captured set back in after a failed checkpoint.
func (t *SlotTracker) MergeBack(d *DirtySet) {
	if d == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.all = t.all || d.All
	for s, bits := range d.Slots {
		t.slots[s] |= bits
	}
}

// DirtySlots reports how many slots are currently marked (0 with all set is
// still "everything": check DirtyPages for the page-level answer).
func (t *SlotTracker) DirtySlots() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.slots)
}

// MaxSlot reports the highest slot currently marked, -1 when none are.
func (t *SlotTracker) MaxSlot() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := -1
	for s := range t.slots {
		if s > m {
			m = s
		}
	}
	return m
}

// DirtyPages reports how many logical pages of layout l the next
// incremental checkpoint would rewrite from the dirt tracked so far.
func (t *SlotTracker) DirtyPages(l Layout) int {
	t.mu.Lock()
	if t.all {
		t.mu.Unlock()
		return l.Pages()
	}
	d := &DirtySet{Slots: t.slots}
	n := len(d.Pages(l))
	t.mu.Unlock()
	return n
}
