package coarse

// SizeBytes estimates the serialized footprint of the coarse index: the
// complete rankings, the medoid inverted index (augmented postings over
// medoid rankings only, which is where the size saving over a plain index
// comes from), and the partition BK-forest.
func (idx *Index) SizeBytes() int64 {
	var sz int64 = 24
	sz += int64(idx.n) * int64(4*idx.k) // rankings
	if idx.medoidIdx != nil {
		// The medoid index's own ranking payload is shared with the global
		// collection; count only its posting lists.
		sz += idx.medoidIdx.SizeBytes(true) - int64(idx.medoidIdx.Len())*int64(4*idx.k)
	}
	for _, c := range idx.clusters {
		sz += 8 // medoid id + size
		sz += int64(c.part.Size) * 12
	}
	return sz
}
