package topk

import (
	"math/rand"
	"sort"
	"testing"
)

func bruteNN(rs []Ranking, q Ranking, n int) []Result {
	all := make([]Result, len(rs))
	for id, r := range rs {
		all[id] = Result{ID: ID(id), Dist: Distance(q, r)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

func TestNearestNeighborsAllIndexes(t *testing.T) {
	rs := testCollection(t, 900)
	searchers := map[string]NearestNeighborSearcher{}
	if idx, err := NewCoarseIndex(rs, WithThetaC(0.3)); err == nil {
		searchers["coarse"] = idx
	} else {
		t.Fatal(err)
	}
	if idx, err := NewInvertedIndex(rs); err == nil {
		searchers["inverted"] = idx
	} else {
		t.Fatal(err)
	}
	if idx, err := NewInvertedIndex(rs, WithAlgorithm(ListMerge)); err == nil {
		searchers["merge"] = idx
	} else {
		t.Fatal(err)
	}
	if idx, err := NewBlockedIndex(rs, WithBlockedDrop()); err == nil {
		searchers["blocked"] = idx
	} else {
		t.Fatal(err)
	}
	for _, kind := range []TreeKind{BKTree, MTree, VPTree} {
		idx, err := NewMetricTree(rs, kind)
		if err != nil {
			t.Fatal(err)
		}
		searchers[map[TreeKind]string{BKTree: "bktree", MTree: "mtree", VPTree: "vptree"}[kind]] = idx
	}

	rng := rand.New(rand.NewSource(9))
	for name, s := range searchers {
		for trial := 0; trial < 10; trial++ {
			q := rs[rng.Intn(len(rs))]
			n := 1 + rng.Intn(12)
			got, err := s.NearestNeighbors(q, n)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want := bruteNN(rs, q, n)
			if len(got) != len(want) {
				t.Fatalf("%s n=%d: got %d results, want %d", name, n, len(got), len(want))
			}
			// Distances must agree exactly; id ties may legitimately differ
			// only when distances tie — our tie-break is deterministic, so
			// require full equality.
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s n=%d: result %d = %v, want %v", name, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNearestNeighborsEdgeCases(t *testing.T) {
	rs := testCollection(t, 100)
	idx, _ := NewInvertedIndex(rs)
	if got, err := idx.NearestNeighbors(rs[0], 0); err != nil || got != nil {
		t.Fatalf("n=0: %v %v", got, err)
	}
	got, err := idx.NearestNeighbors(rs[0], 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("n>len: %d results", len(got))
	}
	tree, _ := NewMetricTree(rs, BKTree)
	if _, err := tree.NearestNeighbors(Ranking{1, 2}, 3); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestNearestNeighborsFindsZeroOverlapNeighbors(t *testing.T) {
	// A query disjoint from everything: all rankings are at dmax; KNN must
	// still return n of them (the back-fill path of the expanding search).
	rs := []Ranking{
		{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}, {11, 12, 13, 14, 15},
	}
	idx, err := NewInvertedIndex(rs)
	if err != nil {
		t.Fatal(err)
	}
	q := Ranking{100, 101, 102, 103, 104}
	got, err := idx.NearestNeighbors(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Dist != MaxDistance(5) || got[1].Dist != MaxDistance(5) {
		t.Fatalf("disjoint KNN: %v", got)
	}
}
