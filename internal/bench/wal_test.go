package bench

import (
	"testing"
)

// TestWALOverheadSmoke runs the durability experiment at tiny scale: every
// policy row must come back with sane counters — the synchronous policy
// syncs at least once per op, the off baseline never touches a log.
func TestWALOverheadSmoke(t *testing.T) {
	env := tinyEnv(t)
	recs, table, err := WALOverhead(env, 150, 30, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(walPolicies) {
		t.Fatalf("%d records for %d policies", len(recs), len(walPolicies))
	}
	if len(table.Rows) != len(recs) {
		t.Fatalf("table rows %d != records %d", len(table.Rows), len(recs))
	}
	byName := map[string]WALRecord{}
	for _, r := range recs {
		byName[r.Policy] = r
		if r.Ops != 150 || r.Searches != 30 {
			t.Fatalf("policy %s: ops/searches %d/%d", r.Policy, r.Ops, r.Searches)
		}
		if r.MutationsPerSec <= 0 {
			t.Fatalf("policy %s: zero mutation throughput", r.Policy)
		}
	}
	if off := byName["off"]; off.Syncs != 0 || off.SyncedBytes != 0 {
		t.Fatalf("off baseline touched a log: %+v", off)
	}
	if s1 := byName["every-1"]; s1.Syncs < 150 || s1.SyncedBytes == 0 {
		t.Fatalf("synchronous commit under-synced: %+v", s1)
	}
}
