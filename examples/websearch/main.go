// Websearch: the query-suggestion scenario from the paper's introduction.
//
// A search engine logs, for every issued keyword query, the top-10 result
// documents. To suggest related historic queries for a newly issued one, it
// searches the logged result rankings for those similar to the new query's
// result ranking. This example simulates such a log (NYT-like: heavy
// document-popularity skew, many reformulated near-duplicate queries),
// builds the auto-tuned coarse index, and compares it against the plain
// filter-and-validate baseline on the same workload.
package main

import (
	"fmt"
	"log"
	"time"

	"topk"
	"topk/internal/dataset"
)

func main() {
	const (
		numQueriesLogged = 20000
		k                = 10
	)
	cfg := dataset.NYTLike(numQueriesLogged, k)
	rankingLog, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated query log: %d result rankings (k=%d)\n", len(rankingLog), k)

	// The coarse index tunes its partitioning threshold with the cost model
	// for the largest similarity threshold the suggestion feature uses.
	start := time.Now()
	coarseIdx, err := topk.NewCoarseIndex(rankingLog, topk.WithAutoTune(0.2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coarse index: θC=%.2f (auto-tuned), %d partitions, built in %v\n",
		coarseIdx.ThetaC(), coarseIdx.NumPartitions(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	baseline, err := topk.NewInvertedIndex(rankingLog, topk.WithAlgorithm(topk.FilterValidate))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline F&V index built in %v\n", time.Since(start).Round(time.Millisecond))

	// New queries arrive: result rankings resembling logged ones.
	incoming, err := dataset.Workload(rankingLog, cfg, 200, 0.9, 42)
	if err != nil {
		log.Fatal(err)
	}

	suggest := func(idx topk.Index, name string) {
		start := time.Now()
		found := 0
		for _, q := range incoming {
			res, err := idx.Search(q, 0.15)
			if err != nil {
				log.Fatal(err)
			}
			found += len(res)
		}
		fmt.Printf("%-22s %6v for %d lookups, %5d suggestions, %8d distance calls\n",
			name, time.Since(start).Round(time.Microsecond), len(incoming), found, idx.DistanceCalls())
	}
	fmt.Println("\nsuggesting related historic queries (θ = 0.15):")
	suggest(coarseIdx, "coarse (auto-tuned):")
	suggest(baseline, "plain F&V:")

	// Show one concrete suggestion set.
	q := incoming[0]
	res, _ := coarseIdx.Search(q, 0.15)
	fmt.Printf("\nexample: new result ranking %v\n", q)
	for i, r := range res {
		if i == 5 {
			fmt.Printf("  … %d more\n", len(res)-5)
			break
		}
		fmt.Printf("  suggest logged query #%d (distance %d): %v\n", r.ID, r.Dist, rankingLog[r.ID])
	}
}
