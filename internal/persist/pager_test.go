package persist

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topk/internal/ranking"
)

// newestFooter scans dir like recovery does: newest decodable
// checkpoint-*.v3f wins. Returns "" when none exists.
func newestFooter(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, FooterSuffix) {
			continue
		}
		if name > newest {
			newest = name
		}
	}
	if newest == "" {
		return ""
	}
	return filepath.Join(dir, newest)
}

func loadDir(t *testing.T, dir string) []ranking.Ranking {
	t.Helper()
	fp := newestFooter(t, dir)
	if fp == "" {
		t.Fatal("no checkpoint footer in directory")
	}
	pc, _, err := OpenPagedDir(dir, fp, false)
	if err != nil {
		t.Fatalf("open %s: %v", fp, err)
	}
	return pc.Slots()
}

func mutate(rng *rand.Rand, slots []ranking.Ranking, tr *SlotTracker, n int) []ranking.Ranking {
	out := append([]ranking.Ranking(nil), slots...)
	for i := 0; i < n; i++ {
		s := rng.Intn(len(out) + 1)
		r := randomRanking(rng, 10)
		switch {
		case s == len(out):
			out = append(out, r)
			tr.MarkInsert(s)
		case out[s] == nil:
			out[s] = r
			tr.MarkInsert(s)
		case rng.Intn(3) == 0:
			out[s] = nil
			tr.MarkDelete(s)
		default:
			out[s] = r
			tr.MarkUpdate(s)
		}
	}
	return out
}

// TestPagerIncremental is the page-economy assertion of the issue: after a
// full first checkpoint, a small mutation burst must rewrite only the pages
// the dirt touches, with everything else carried by reference.
func TestPagerIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	dir := t.TempDir()
	slots := randomSlots(rng, 5000, 10)

	p := NewPager(dir, nil, nil)
	st1, err := p.WriteCheckpoint(1, slots, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := p.Prev().Layout
	if st1.PagesWritten != l.Pages() || st1.PagesReused != 0 {
		t.Fatalf("first checkpoint wrote %d/%d pages, reused %d; want full write",
			st1.PagesWritten, l.Pages(), st1.PagesReused)
	}
	slotsEqual(t, slots, loadDir(t, dir))

	tr := NewSlotTracker()
	slots2 := mutate(rng, slots, tr, 8)
	st2, err := p.WriteCheckpoint(2, slots2, tr.Capture())
	if err != nil {
		t.Fatal(err)
	}
	if st2.PagesWritten == 0 || st2.PagesWritten > 12 {
		t.Fatalf("8-slot burst wrote %d pages; want a handful", st2.PagesWritten)
	}
	if st2.PagesReused < l.Pages()-st2.PagesWritten {
		t.Fatalf("8-slot burst reused %d pages of %d", st2.PagesReused, l.Pages())
	}
	if st2.BytesWritten != int64(st2.PagesWritten)*int64(l.PageSize) {
		t.Fatalf("bytesWritten %d does not match %d pages", st2.BytesWritten, st2.PagesWritten)
	}
	slotsEqual(t, slots2, loadDir(t, dir))

	// The superseded checkpoint-1 footer still loads its exact state: shadow
	// paging never touched its pages.
	pc1, _, err := OpenPagedDir(dir, FooterPath(dir, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	slotsEqual(t, slots, pc1.Slots())
}

// TestPagerFreeListReuse: after old footers are deleted (what WAL truncation
// does), their physical pages are reclaimed instead of growing pages.v3.
func TestPagerFreeListReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	dir := t.TempDir()
	slots := randomSlots(rng, 5000, 10)
	p := NewPager(dir, nil, nil)
	if _, err := p.WriteCheckpoint(1, slots, nil); err != nil {
		t.Fatal(err)
	}
	size1 := dataFileSize(t, dir)
	for seq := uint64(2); seq <= 6; seq++ {
		tr := NewSlotTracker()
		slots = mutate(rng, slots, tr, 4)
		if _, err := p.WriteCheckpoint(seq, slots, tr.Capture()); err != nil {
			t.Fatal(err)
		}
		// Truncate like wal.CheckpointPaged: drop all older footers.
		for old := uint64(1); old < seq; old++ {
			os.Remove(FooterPath(dir, old))
		}
	}
	slotsEqual(t, slots, loadDir(t, dir))
	if size6 := dataFileSize(t, dir); size6 > size1*2 {
		t.Fatalf("pages.v3 grew from %d to %d across 5 tiny checkpoints; free pages are not reused", size1, size6)
	}
}

func dataFileSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, DataFileName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestPagerPinnedPagesSurvive: a checkpoint's pages stay byte-stable while a
// mapping of them is pinned, no matter how many later checkpoints land.
func TestPagerPinnedPagesSurvive(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	dir := t.TempDir()
	slots := randomSlots(rng, 4000, 10)
	p0 := NewPager(dir, nil, nil)
	if _, err := p0.WriteCheckpoint(1, slots, nil); err != nil {
		t.Fatal(err)
	}
	pc, ft, err := OpenPagedDir(dir, FooterPath(dir, 1), true)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]ranking.Ranking(nil), pc.Slots()...)
	for i, r := range want {
		if r != nil {
			want[i] = append(ranking.Ranking(nil), r...)
		}
	}

	p := NewPager(dir, ft, ft) // pinned: the mapping above
	cur := slots
	for seq := uint64(2); seq <= 8; seq++ {
		tr := NewSlotTracker()
		cur = mutate(rng, cur, tr, 50)
		if _, err := p.WriteCheckpoint(seq, cur, tr.Capture()); err != nil {
			t.Fatal(err)
		}
		for old := uint64(1); old < seq; old++ {
			os.Remove(FooterPath(dir, old)) // even with its footer gone, the pin must hold
		}
	}
	slotsEqual(t, want, pc.Slots())
	slotsEqual(t, cur, loadDir(t, dir))
	pc.Close()
}

// TestPagerCrashEveryStep kills the checkpoint install at every hook step
// and asserts the directory always recovers to exactly the previous or the
// new checkpoint — never a blend — and that a retried checkpoint with the
// merged-back dirt then succeeds. Run under -race in CI.
func TestPagerCrashEveryStep(t *testing.T) {
	steps := []string{
		"write-page", "pages-written", "data-synced",
		"footer-temp", "footer-synced", "footer-renamed", "dir-synced",
	}
	for _, step := range steps {
		t.Run(step, func(t *testing.T) {
			rng := rand.New(rand.NewSource(54))
			dir := t.TempDir()
			prev := randomSlots(rng, 3000, 10)
			p := NewPager(dir, nil, nil)
			if _, err := p.WriteCheckpoint(1, prev, nil); err != nil {
				t.Fatal(err)
			}

			tr := NewSlotTracker()
			next := mutate(rng, prev, tr, 10)
			dirt := tr.Capture()
			boom := errors.New("injected crash")
			p.TestHook = func(s string) error {
				if s == step {
					return boom
				}
				return nil
			}
			_, err := p.WriteCheckpoint(2, next, dirt)
			if !errors.Is(err, boom) {
				t.Fatalf("hooked checkpoint returned %v, want injected crash", err)
			}
			p.TestHook = nil

			// Recovery: the newest decodable footer must describe exactly one
			// of the two states.
			got := loadDir(t, dir)
			isPrev, isNext := slotsMatch(prev, got), slotsMatch(next, got)
			if !isPrev && !isNext {
				t.Fatalf("crash at %s: recovered state is a blend (matches neither checkpoint)", step)
			}
			// Before the rename lands the directory must still say checkpoint 1.
			switch step {
			case "write-page", "pages-written", "data-synced", "footer-temp", "footer-synced":
				if !isPrev {
					t.Fatalf("crash at %s: new checkpoint visible before its commit point", step)
				}
			case "footer-renamed", "dir-synced":
				if !isNext {
					t.Fatalf("crash at %s: checkpoint not visible after its commit point", step)
				}
			}

			// The crashed process restarts: recovery seeds a fresh pager from
			// the surviving footer and the retried checkpoint (dirt merged
			// back when the install did not commit) must land state `next`.
			ft, err := LoadFooter(newestFooter(t, dir))
			if err != nil {
				t.Fatal(err)
			}
			if !isNext {
				tr2 := NewSlotTracker()
				tr2.MergeBack(dirt)
				p2 := NewPager(dir, ft, nil)
				if _, err := p2.WriteCheckpoint(3, next, tr2.Capture()); err != nil {
					t.Fatalf("retry after crash at %s: %v", step, err)
				}
			}
			if got := loadDir(t, dir); !slotsMatch(next, got) {
				t.Fatalf("after recovery from crash at %s the directory does not hold the new state", step)
			}
		})
	}
}

func slotsMatch(a, b []ranking.Ranking) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			return false
		}
		if a[i] != nil && !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestPagerEmptyCollection: checkpointing an empty collection (fresh mutable
// collection, no inserts yet) must work and recover as empty.
func TestPagerEmptyCollection(t *testing.T) {
	dir := t.TempDir()
	p := NewPager(dir, nil, nil)
	st, err := p.WriteCheckpoint(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesWritten != 0 {
		t.Fatalf("empty checkpoint wrote %d pages", st.PagesWritten)
	}
	pc, _, err := OpenPagedDir(dir, FooterPath(dir, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Slots()) != 0 {
		t.Fatalf("empty checkpoint recovered %d slots", len(pc.Slots()))
	}
	// First insert after the empty checkpoint defines k: geometry change,
	// pager must fall back to a full (1-slot) rewrite, not a diff.
	tr := NewSlotTracker()
	tr.MarkInsert(0)
	if _, err := p.WriteCheckpoint(2, []ranking.Ranking{{1, 2, 3}}, tr.Capture()); err != nil {
		t.Fatal(err)
	}
	slotsEqual(t, []ranking.Ranking{{1, 2, 3}}, loadDir(t, dir))
}

func TestFooterCorruption(t *testing.T) {
	dir := t.TempDir()
	p := NewPager(dir, nil, nil)
	if _, err := p.WriteCheckpoint(1, []ranking.Ranking{{1, 2, 3}, nil}, nil); err != nil {
		t.Fatal(err)
	}
	path := FooterPath(dir, 1)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(good); off += 3 {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if _, err := decodeFooter(bad); err == nil {
			t.Fatalf("footer with byte %d flipped decoded cleanly", off)
		}
	}
	for cut := 1; cut < len(good); cut += 5 {
		if _, err := decodeFooter(good[:len(good)-cut]); err == nil {
			t.Fatalf("footer truncated by %d decoded cleanly", cut)
		}
	}
	// A footer whose page map points past pages.v3 must be rejected at open.
	ft, err := LoadFooter(path)
	if err != nil {
		t.Fatal(err)
	}
	ft.PhysPages += 10
	for i := range ft.PageMap {
		ft.PageMap[i] += 5
	}
	if err := os.WriteFile(path, encodeFooter(ft), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenPagedDir(dir, path, false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-file page map: got %v, want ErrCorrupt", err)
	}
}

func TestSlotTracker(t *testing.T) {
	tr := NewSlotTracker()
	l := Layout{PageSize: minPageSize, K: 10, Slots: 10000}
	if got := tr.DirtyPages(l); got != 0 {
		t.Fatalf("fresh tracker reports %d dirty pages", got)
	}
	tr.MarkInsert(0)
	tr.MarkUpdate(1) // same arena page as slot 0, different flag behavior
	tr.MarkDelete(9999)
	if got := tr.DirtySlots(); got != 3 {
		t.Fatalf("DirtySlots = %d, want 3", got)
	}
	if got := tr.MaxSlot(); got != 9999 {
		t.Fatalf("MaxSlot = %d, want 9999", got)
	}
	d := tr.Capture()
	if tr.DirtySlots() != 0 || tr.MaxSlot() != -1 {
		t.Fatal("capture did not reset the tracker")
	}
	pages := d.Pages(l)
	// slot 0: flag page 0 + arena page; slot 1: arena page only (same as 0);
	// slot 9999: flag page 9999/4096=2 only.
	if !pages[0] || !pages[2] {
		t.Fatalf("expected flag pages 0 and 2 dirty, got %v", pages)
	}
	ap, _ := l.arenaPos(0)
	if !pages[ap] {
		t.Fatalf("expected arena page %d dirty, got %v", ap, pages)
	}
	if len(pages) != 3 {
		t.Fatalf("expected 3 dirty pages, got %v", pages)
	}

	tr.MergeBack(d)
	if tr.DirtySlots() != 3 {
		t.Fatal("merge-back lost slots")
	}
	tr.MarkAll()
	if got := tr.DirtyPages(l); got != l.Pages() {
		t.Fatalf("poisoned tracker reports %d dirty pages, want all %d", got, l.Pages())
	}
	if !tr.Capture().All {
		t.Fatal("capture dropped the All poison")
	}
}

func ExamplePager() {
	dir, _ := os.MkdirTemp("", "pager-example-*")
	defer os.RemoveAll(dir)
	p := NewPager(dir, nil, nil)
	slots := make([]ranking.Ranking, 20000)
	for i := range slots {
		slots[i] = ranking.Ranking{uint32(i), uint32(i + 1), uint32(i + 2)}
	}
	st1, _ := p.WriteCheckpoint(1, slots, nil)
	tr := NewSlotTracker()
	slots[7] = ranking.Ranking{9, 9, 9}
	tr.MarkUpdate(7)
	st2, _ := p.WriteCheckpoint(2, slots, tr.Capture())
	fmt.Printf("full: %d written, %d reused\n", st1.PagesWritten, st1.PagesReused)
	fmt.Printf("incr: %d written, %d reused\n", st2.PagesWritten, st2.PagesReused)
	// Output:
	// full: 5 written, 0 reused
	// incr: 1 written, 4 reused
	_ = os.RemoveAll(dir)
}
