package bktree

import (
	"fmt"

	"topk/internal/ranking"
)

// SizeBytes estimates the serialized footprint of the tree: the complete
// rankings payload (all indices store the full rankings, as Table 6 of the
// paper notes) plus, per node, its ranking id and per edge a distance and a
// child offset. The estimate matches what persist.WriteBKTree emits.
func (t *Tree) SizeBytes() int64 {
	var sz int64 = 16                  // header: k, size
	sz += int64(t.size) * int64(4*t.k) // rankings payload
	var walk func(n *Node)
	walk = func(n *Node) {
		sz += 4 + 4 // node id + child count
		for _, e := range n.Children {
			sz += 4 // edge distance
			walk(e.Child)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return sz
}

// Rehydrate assembles a Tree from a deserialized node structure and its
// backing collection, without recomputing distances. The caller (package
// persist) is responsible for the structural integrity of root; Rehydrate
// validates only the collection shape.
func Rehydrate(rankings []ranking.Ranking, root *Node, size int) (*Tree, error) {
	t := &Tree{rankings: rankings, Root: root, size: size}
	if len(rankings) > 0 {
		t.k = rankings[0].K()
	}
	if root == nil && size != 0 {
		return nil, fmt.Errorf("bktree: rehydrate size %d with nil root", size)
	}
	return t, nil
}

// SetRankings rebinds the tree to a (grown) backing collection. Needed by
// incremental insertion in the coarse index: appending to the shared
// rankings slice may reallocate its backing array, and every tree holding
// the old slice header must be repointed before new ids are resolvable.
// The prefix of rs must be identical to the collection the tree was built
// over.
func (t *Tree) SetRankings(rs []ranking.Ranking) { t.rankings = rs }
