package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAcquireWithinCapacity(t *testing.T) {
	c := New(4, 0, 0)
	var releases []func()
	for i := 0; i < 4; i++ {
		rel, err := c.Acquire(context.Background(), 1)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if got := c.InUse(); got != 4 {
		t.Fatalf("InUse = %d, want 4", got)
	}
	for _, rel := range releases {
		rel()
	}
	if got := c.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
	st := c.Stats()
	if st.Admitted != 4 {
		t.Fatalf("Admitted = %d, want 4", st.Admitted)
	}
}

func TestWeightClampedToCapacity(t *testing.T) {
	c := New(2, 0, 0)
	rel, err := c.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatalf("oversized acquire should clamp, got %v", err)
	}
	if got := c.InUse(); got != 2 {
		t.Fatalf("InUse = %d, want clamped 2", got)
	}
	rel()
}

func TestQueueFullSheds(t *testing.T) {
	c := New(1, 0, 0) // no queue at all
	rel, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := c.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := c.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("ShedQueueFull = %d, want 1", st.ShedQueueFull)
	}
}

func TestWaitTimeoutSheds(t *testing.T) {
	c := New(1, 4, 5*time.Millisecond)
	rel, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	if _, err := c.Acquire(context.Background(), 1); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("err = %v, want ErrWaitTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("wait-timeout shed took far too long")
	}
	st := c.Stats()
	if st.ShedTimeout != 1 {
		t.Fatalf("ShedTimeout = %d, want 1", st.ShedTimeout)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("QueueDepth = %d, want 0 after shed", st.QueueDepth)
	}
}

func TestCanceledWhileQueued(t *testing.T) {
	c := New(1, 4, 0)
	rel, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, 1)
		done <- err
	}()
	// Wait until the goroutine is actually queued, then cancel.
	for c.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.ShedCanceled != 1 {
		t.Fatalf("ShedCanceled = %d, want 1", st.ShedCanceled)
	}
}

func TestFIFOGrantOnRelease(t *testing.T) {
	c := New(1, 8, 0)
	rel, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		// Enqueue strictly one at a time so queue order is deterministic.
		for c.QueueDepth() != i {
			time.Sleep(time.Millisecond)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Acquire(context.Background(), 1)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			r()
		}(i)
	}
	for c.QueueDepth() != waiters {
		time.Sleep(time.Millisecond)
	}
	rel() // grants cascade FIFO as each waiter releases
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("grant order: got waiter %d, want %d", got, want)
		}
		want++
	}
}

func TestReleaseIdempotent(t *testing.T) {
	c := New(2, 0, 0)
	rel, err := c.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must be a no-op, not free phantom capacity
	if got := c.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
	if _, err := c.Acquire(context.Background(), 2); err != nil {
		t.Fatalf("reacquire after idempotent release: %v", err)
	}
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	rel, err := c.Acquire(context.Background(), 99)
	if err != nil {
		t.Fatalf("nil controller: %v", err)
	}
	rel()
	if c.QueueDepth() != 0 || c.InUse() != 0 || c.Capacity() != 0 {
		t.Fatal("nil controller accessors should be zero")
	}
}

func TestLargeWaiterBlocksSmallerBehindIt(t *testing.T) {
	c := New(4, 8, 0)
	rel, err := c.Acquire(context.Background(), 3) // 1 unit free
	if err != nil {
		t.Fatal(err)
	}
	bigDone := make(chan struct{})
	go func() {
		r, err := c.Acquire(context.Background(), 3) // needs 3, only 1 free
		if err != nil {
			t.Errorf("big waiter: %v", err)
		}
		close(bigDone)
		r()
	}()
	for c.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	smallDone := make(chan struct{})
	go func() {
		r, err := c.Acquire(context.Background(), 1) // would fit, but FIFO
		if err != nil {
			t.Errorf("small waiter: %v", err)
		}
		close(smallDone)
		r()
	}()
	for c.QueueDepth() != 2 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-smallDone:
		t.Fatal("small waiter jumped the queue ahead of the large one")
	case <-time.After(20 * time.Millisecond):
	}
	rel() // frees 3 → big goes first, then small
	<-bigDone
	<-smallDone
}
