// Tuning: the cost model in action (Sections 5 and 7 of the paper).
//
// This example generates a clustered collection, sweeps the partitioning
// threshold θC empirically — measuring real filtering and validation time
// per operating point — and asks the cost model for its sweet spot, showing
// that the model's choice lands near the empirical optimum (the claim of
// Figure 7 / Table 5).
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"topk/internal/bench"
	"topk/internal/costmodel"
	"topk/internal/dataset"
	"topk/internal/ranking"
)

func main() {
	const k, theta = 10, 0.2
	env, err := bench.NewEnv("demo", dataset.NYTLike(8000, k), 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: n=%d, k=%d, Zipf s≈%.2f, %d distinct items\n\n",
		len(env.Rankings), k, env.ZipfS, env.V)

	grid := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	points, err := bench.Figure7Sweep(env, theta, grid)
	if err != nil {
		log.Fatal(err)
	}

	var bestEmp bench.ThetaCPoint
	bestEmp.Overall = 1 << 62
	var maxOverall time.Duration
	for _, p := range points {
		if p.Overall < bestEmp.Overall {
			bestEmp = p
		}
		if p.Overall > maxOverall {
			maxOverall = p.Overall
		}
	}

	fmt.Printf("empirical sweep at θ=%.1f (times per %d queries):\n", theta, len(env.Queries))
	fmt.Printf("%8s %12s %12s %12s %12s  %s\n", "θC", "filter", "validate", "overall", "partitions", "")
	for _, p := range points {
		bar := strings.Repeat("#", int(30*p.Overall/maxOverall))
		marker := ""
		if p.ThetaC == bestEmp.ThetaC {
			marker = "  ← empirical optimum"
		}
		fmt.Printf("%8.2f %12v %12v %12v %12d  %s%s\n",
			p.ThetaC, p.Filter.Round(time.Microsecond), p.Validate.Round(time.Microsecond),
			p.Overall.Round(time.Microsecond), p.Partitions, bar, marker)
	}

	// Now the model's pick.
	m, err := costmodel.New(len(env.Rankings), k, env.V, env.ZipfS, env.CDF)
	if err != nil {
		log.Fatal(err)
	}
	m.Calibrate(1)
	raw := m.OptimalThetaC(ranking.RawThreshold(theta, k), costmodel.DefaultGrid(k))
	modelTC := float64(raw) / float64(ranking.MaxDistance(k))
	fmt.Printf("\ncost model sweet spot: θC = %.2f (empirical optimum: %.2f)\n", modelTC, bestEmp.ThetaC)
	fmt.Println("\nthe filtering curve falls with θC (fewer medoids in the inverted index)")
	fmt.Println("while validation rises (larger partitions to verify) — the sweet spot")
	fmt.Println("balances the two, and the model finds it from the distance CDF alone.")
}
