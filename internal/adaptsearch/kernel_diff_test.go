package adaptsearch

import (
	"math/rand"
	"testing"

	"topk/internal/difftest"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// TestKernelPathMatchesEvaluator: the verification phase's compiled kernel
// must match the legacy ev.Distance loop exactly — same results, same DFC.
func TestKernelPathMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n, k, domain = 400, 12, 300
	rs := difftest.RandomCollection(rng, n, k, domain)
	idx, err := New(rs)
	if err != nil {
		t.Fatal(err)
	}
	sKern := NewSearcher(idx)
	sLegacy := NewSearcher(idx)
	dmax := ranking.MaxDistance(k)
	for trial := 0; trial < 60; trial++ {
		q := difftest.RandomRanking(rng, k, domain)
		if rng.Intn(2) == 0 {
			q = rs[rng.Intn(n)]
		}
		for _, raw := range []int{0, dmax / 10, dmax / 4, dmax / 2, dmax - 1} {
			evK := metric.New(nil)
			evL := metric.New(ranking.Footrule)
			gotK, err := sKern.Query(q, raw, evK)
			if err != nil {
				t.Fatal(err)
			}
			gotL, err := sLegacy.Query(q, raw, evL)
			if err != nil {
				t.Fatal(err)
			}
			if !difftest.Equal(gotK, gotL) {
				t.Fatalf("raw=%d: kernel %v != legacy %v", raw, gotK, gotL)
			}
			if evK.Calls() != evL.Calls() {
				t.Fatalf("raw=%d: kernel DFC %d != legacy DFC %d", raw, evK.Calls(), evL.Calls())
			}
		}
	}
}
