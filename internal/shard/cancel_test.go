package shard_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"topk/internal/dataset"
	"topk/internal/ranking"
	"topk/internal/shard"
)

// fakeState is shared by every fake shard of one Sharded under test: the
// searches counter proves how much shard work was actually scheduled, and
// block (when non-nil) holds every started search until the test releases it.
type fakeState struct {
	searches atomic.Uint64
	block    chan struct{}
	// searchErr, when non-nil, is returned by every Search — the sub-index
	// failure path of the batch short-circuit.
	searchErr error
}

// fakeIndex counts work instead of doing it. It deliberately implements the
// whole surface the fan-out paths type-assert for (NearestNeighborSearcher)
// so one fake covers every Sharded query path.
type fakeIndex struct {
	st *fakeState
	n  int
	k  int
}

func (f *fakeIndex) Search(q ranking.Ranking, theta float64) ([]ranking.Result, error) {
	f.st.searches.Add(1)
	if f.st.block != nil {
		<-f.st.block
	}
	if f.st.searchErr != nil {
		return nil, f.st.searchErr
	}
	return nil, nil
}

func (f *fakeIndex) NearestNeighbors(q ranking.Ranking, n int) ([]ranking.Result, error) {
	return f.Search(q, 0)
}

func (f *fakeIndex) Len() int              { return f.n }
func (f *fakeIndex) K() int                { return f.k }
func (f *fakeIndex) DistanceCalls() uint64 { return f.st.searches.Load() }

// fakeSharded builds a Sharded over counting fakes.
func fakeSharded(t *testing.T, numShards int, st *fakeState) (*shard.Sharded, []ranking.Ranking) {
	t.Helper()
	rs, err := dataset.Generate(dataset.NYTLike(8*numShards, 10))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(rs, numShards, func(chunk []ranking.Ranking) (shard.Index, error) {
		return &fakeIndex{st: st, n: len(chunk), k: 10}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh, rs
}

// TestPreCanceledContextDoesNoShardWork is the strongest form of the
// cancellation contract: a request whose context is already dead must not
// schedule a single sub-index search on any query path.
func TestPreCanceledContextDoesNoShardWork(t *testing.T) {
	st := &fakeState{}
	sh, rs := fakeSharded(t, 4, st)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := rs[0]

	if _, err := sh.SearchContext(ctx, q, 0.2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchContext error = %v, want context.Canceled", err)
	}
	if _, err := sh.SearchBatchContext(ctx, rs[:4], 0.2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchBatchContext error = %v, want context.Canceled", err)
	}
	if _, err := sh.SearchBatchThetasContext(ctx, rs[:2], []float64{0.1, 0.2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchBatchThetasContext error = %v, want context.Canceled", err)
	}
	if _, _, err := sh.SearchTracedContext(ctx, q, 0.2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchTracedContext error = %v, want context.Canceled", err)
	}
	if _, err := sh.NearestNeighborsContext(ctx, q, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("NearestNeighborsContext error = %v, want context.Canceled", err)
	}
	if got := st.searches.Load(); got != 0 {
		t.Fatalf("pre-canceled requests scheduled %d sub-index searches, want 0", got)
	}
}

// TestExpiredDeadlineSurfacesAsDeadlineExceeded pins the error identity the
// HTTP layer maps to 504.
func TestExpiredDeadlineSurfacesAsDeadlineExceeded(t *testing.T) {
	st := &fakeState{}
	sh, rs := fakeSharded(t, 2, st)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := sh.SearchContext(ctx, rs[0], 0.2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if got := st.searches.Load(); got != 0 {
		t.Fatalf("expired request scheduled %d searches, want 0", got)
	}
}

// TestBatchCancelStopsRemainingQueries cancels a batch while its first
// queries are still blocked inside the sub-indices and proves the rest of
// the batch never reaches a shard: the distance-work counters stop advancing
// the moment the context dies.
func TestBatchCancelStopsRemainingQueries(t *testing.T) {
	const numShards, batch = 2, 64
	st := &fakeState{block: make(chan struct{})}
	sh, _ := fakeSharded(t, numShards, st)
	rs, err := dataset.Generate(dataset.NYTLike(batch, 10))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sh.SearchBatchContext(ctx, rs, 0.2)
		done <- err
	}()
	// Wait for the first query to actually be inside a sub-index search.
	for st.searches.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	close(st.block) // release the in-flight searches

	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	// Only queries already in flight at cancellation may have touched shards:
	// at most one per worker, each fanning out to every shard. Everything
	// else must have been cut off.
	limit := uint64(runtime.GOMAXPROCS(0) * numShards)
	if got := st.searches.Load(); got > limit {
		t.Fatalf("after cancel %d sub-index searches ran, want <= %d (in-flight only)", got, limit)
	}
	before := st.searches.Load()
	time.Sleep(2 * time.Millisecond)
	if got := st.searches.Load(); got != before {
		t.Fatalf("searches kept advancing after cancellation: %d -> %d", before, got)
	}
}

// TestBatchFirstErrorShortCircuits pins the satellite fix: one failing query
// cancels the pool, so a batch does not burn through its remaining members
// (or their shard fan-outs) after its outcome is decided.
func TestBatchFirstErrorShortCircuits(t *testing.T) {
	const numShards, batch = 2, 64
	sentinel := errors.New("sub-index exploded")
	st := &fakeState{searchErr: sentinel}
	sh, _ := fakeSharded(t, numShards, st)
	rs, err := dataset.Generate(dataset.NYTLike(batch, 10))
	if err != nil {
		t.Fatal(err)
	}

	_, err = sh.SearchBatchContext(context.Background(), rs, 0.2)
	if !errors.Is(err, sentinel) {
		t.Fatalf("batch error = %v, want the sub-index failure", err)
	}
	// The real failure must win over the cancellations it triggered.
	if errors.Is(err, context.Canceled) {
		t.Fatalf("batch error %v reports cancellation instead of the failure that caused it", err)
	}
	limit := uint64(runtime.GOMAXPROCS(0) * numShards)
	if got := st.searches.Load(); got > limit {
		t.Fatalf("failing batch still ran %d sub-index searches, want <= %d", got, limit)
	}
}
