package invindex

import (
	"math/rand"
	"testing"

	"topk/internal/difftest"
	"topk/internal/ranking"
)

// TestDeleteFiltersAllAlgorithms tombstones a third of the collection and
// checks that F&V, F&V+Drop and ListMerge all skip the dead rankings,
// byte-identically to a survivor-only linear scan with original ids.
func TestDeleteFiltersAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rs := difftest.RandomCollection(rng, 300, 8, 250)
	idx, err := New(rs)
	if err != nil {
		t.Fatal(err)
	}
	slots := append([]ranking.Ranking(nil), rs...)
	for len(rs)-idx.Live() < len(rs)/3 {
		id := ranking.ID(rng.Intn(len(rs)))
		if idx.Deleted(id) {
			continue
		}
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		slots[id] = nil
	}
	if err := idx.Delete(ranking.ID(len(rs)) + 7); err == nil {
		t.Fatal("Delete out of range succeeded")
	}
	o := difftest.NewOracle(slots)
	if idx.Live() != o.Len() {
		t.Fatalf("Live=%d, oracle %d", idx.Live(), o.Len())
	}

	s := NewSearcher(idx)
	algos := map[string]func(q ranking.Ranking, raw int) ([]ranking.Result, error){
		"FilterValidate": func(q ranking.Ranking, raw int) ([]ranking.Result, error) {
			return s.FilterValidate(q, raw, nil)
		},
		"FilterValidateDrop": func(q ranking.Ranking, raw int) ([]ranking.Result, error) {
			return s.FilterValidateDrop(q, raw, nil, DropSafe)
		},
		"ListMerge": func(q ranking.Ranking, raw int) ([]ranking.Result, error) {
			return s.ListMerge(q, raw, nil)
		},
	}
	for trial := 0; trial < 25; trial++ {
		q := rs[rng.Intn(len(rs))]
		if trial%2 == 1 {
			q = difftest.RandomRanking(rng, 8, 250)
		}
		raw := rng.Intn(50)
		want := o.SearchRaw(q, raw)
		for name, search := range algos {
			got, err := search(q, raw)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !difftest.Equal(got, want) {
				t.Fatalf("%s θ=%d: got %v, want %v", name, raw, got, want)
			}
		}
	}

	// Insert after Delete: the tombstone array must track the growth and
	// the fresh ranking must be findable by every algorithm.
	nr := difftest.RandomRanking(rng, 8, 250)
	id, err := idx.Insert(nr)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Deleted(id) {
		t.Fatal("fresh insert reported deleted")
	}
	for name, search := range algos {
		got, err := search(nr, 0)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range got {
			if r.ID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: inserted ranking not found after deletes", name)
		}
	}
}
