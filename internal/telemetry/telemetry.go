// Package telemetry is the zero-dependency metrics substrate of the serving
// stack: counters, gauges and cumulative le-bucket histograms with
// Prometheus text-exposition rendering (version 0.0.4). It exists so every
// layer — HTTP server, shard router, hybrid planner, WAL — reports through
// one scrape endpoint without pulling a client library into the module.
//
// Two usage modes share one Registry:
//
//   - Static instruments (Counter, Gauge, Histogram and their labeled Vec
//     variants) are created up front via the Registry and updated on hot
//     paths with a few atomic operations. They render themselves at scrape.
//   - Scrape-time collectors (Registry.Collect) run a callback against a
//     Writer at every exposition, for layers that already maintain their own
//     snapshot-style statistics (shard.Stats, planner scoreboards, WAL
//     counters): the callback pulls the snapshot and writes families
//     directly, so the hot path pays nothing at all.
//
// Metric and label names are validated at registration; a malformed name is
// a programming error and panics at startup rather than emitting exposition
// a scraper rejects.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func checkName(name string) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

func checkLabel(name string) {
	if !labelRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", name))
	}
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use; Inc/Add are single atomic adds.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) expose(w *Writer, name, labels string) {
	w.sample(name, labels, float64(c.v.Load()))
}

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) expose(w *Writer, name, labels string) {
	w.sample(name, labels, g.Value())
}

// Histogram is a fixed-bound cumulative histogram in the Prometheus bucket
// model: bounds are inclusive upper bounds, observations beyond the last
// bound land in the implicit +Inf bucket. Observe is a bucket scan plus
// three atomic operations; all methods are safe for concurrent use.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// NewHistogram creates an unregistered histogram over the given ascending
// upper bounds — the instrument for packages that expose snapshots rather
// than register themselves (the WAL's fsync-latency histogram). Registered
// histograms come from Registry.Histogram.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Snapshot copies the histogram's state. Concurrent Observes may land
// between the individual loads; each counter is itself consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

func (h *Histogram) expose(w *Writer, name, labels string) {
	w.histogramSamples(name, labels, h.Snapshot())
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts[i] is
// the per-bucket (non-cumulative) count of observations ≤ Bounds[i]; the
// final entry of Counts is the +Inf overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// within the bucket containing the quantile rank. Observations in the +Inf
// bucket are credited to the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			hi := s.Bounds[len(s.Bounds)-1]
			lo := 0.0
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the exponential bucket layout of latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets is the default request-latency layout: 50µs to ~105s
// in ×2 steps, in seconds.
var DefLatencyBuckets = ExpBuckets(50e-6, 2, 21)

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// exposer renders one child's samples.
type exposer interface {
	expose(w *Writer, name, labels string)
}

// family is one registered metric name: help, type and its labeled children.
type family struct {
	name, help, typ string

	mu       sync.Mutex
	order    []string           // label blocks in creation order
	children map[string]exposer // label block -> instrument
	fn       func() float64     // GaugeFunc families
}

func (f *family) child(labels string, mk func() exposer) exposer {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labels]; ok {
		return c
	}
	c := mk()
	f.children[labels] = c
	f.order = append(f.order, labels)
	return c
}

// Registry holds registered instruments and scrape-time collectors and
// renders them as one exposition document.
type Registry struct {
	mu         sync.Mutex
	fams       []*family
	byName     map[string]*family
	collectors []func(*Writer)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string) *family {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, typ: typ, children: make(map[string]exposer)}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Collect registers a scrape-time collector: fn runs against the Writer at
// every exposition, after the static instruments. Collectors must write
// family names that no static instrument owns.
func (r *Registry) Collect(fn func(*Writer)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter").child("", func() exposer { return c })
	return c
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge").child("", func() exposer { return g })
	return g
}

// GaugeFunc registers a gauge whose value is pulled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge").fn = fn
}

// Histogram registers an unlabeled histogram over the given bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, "histogram").child("", func() exposer { return h })
	return h
}

// CounterVec registers a counter family partitioned by the given labels.
type CounterVec struct {
	fam    *family
	labels []string
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	for _, l := range labelNames {
		checkLabel(l)
	}
	return &CounterVec{fam: r.register(name, help, "counter"), labels: labelNames}
}

// With returns the child counter for the given label values (one per label
// name, in registration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	block := labelBlock(v.fam.name, v.labels, values)
	return v.fam.child(block, func() exposer { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct {
	fam    *family
	labels []string
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	for _, l := range labelNames {
		checkLabel(l)
	}
	return &GaugeVec{fam: r.register(name, help, "gauge"), labels: labelNames}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	block := labelBlock(v.fam.name, v.labels, values)
	return v.fam.child(block, func() exposer { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct {
	fam    *family
	labels []string
	bounds []float64
}

// HistogramVec registers a labeled histogram family over shared bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	for _, l := range labelNames {
		checkLabel(l)
	}
	return &HistogramVec{fam: r.register(name, help, "histogram"), labels: labelNames, bounds: bounds}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	block := labelBlock(v.fam.name, v.labels, values)
	return v.fam.child(block, func() exposer { return NewHistogram(v.bounds) }).(*Histogram)
}

func labelBlock(metric string, names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("telemetry: %s: %d label values for %d labels", metric, len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// Labels renders alternating name, value pairs as an exposition label block
// (without braces) — the label argument of the Writer helpers.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("telemetry: Labels needs name, value pairs")
	}
	names := make([]string, 0, len(kv)/2)
	values := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		checkLabel(kv[i])
		names = append(names, kv[i])
		values = append(values, kv[i+1])
	}
	return labelBlock("", names, values)
}

// WritePrometheus renders every registered instrument and collector as one
// Prometheus text-exposition document.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	collectors := append([]func(*Writer){}, r.collectors...)
	r.mu.Unlock()

	ew := &Writer{w: w, typed: make(map[string]string)}
	for _, f := range fams {
		ew.family(f.name, f.help, f.typ)
		if f.fn != nil {
			ew.sample(f.name, "", f.fn())
			continue
		}
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		children := make([]exposer, len(order))
		for i, block := range order {
			children[i] = f.children[block]
		}
		f.mu.Unlock()
		for i, block := range order {
			children[i].expose(ew, f.name, block)
		}
	}
	for _, fn := range collectors {
		fn(ew)
	}
	return ew.err
}
