// The collection manifest: the single durable source of truth for which
// dynamically created collections exist under the WAL root. Layout on disk:
//
//	<wal-root>/
//	    MANIFEST            CRC-checked list of collections and their options
//	    <collection>/       one WAL directory per collection
//	        wal-*.log       mutation segments
//	        checkpoint-*.bin
//
// The manifest is rewritten atomically (tmp + fsync + rename + dir sync) on
// every create and drop, ordered so that a crash at any instant recovers to
// a consistent registry:
//
//   - create writes the manifest BEFORE publishing the collection — a crash
//     in between recovers an empty collection, never loses an acked one;
//   - drop unpublishes and rewrites the manifest BEFORE removing the WAL
//     directory — a crash in between leaves an orphaned directory that the
//     manifest no longer references, which the next create of the same name
//     clears instead of resurrecting.
//
// The default (flag-defined) collection is never in the manifest: its
// existence and options are the command line's, re-resolved on every start.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

const (
	manifestName    = "MANIFEST"
	manifestMagic   = "TKMF"
	manifestVersion = 1
)

// castagnoli matches the WAL's CRC-32C flavor.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// manifestEntry records one dynamically created collection: everything
// needed to rebuild it from its WAL directory on restart.
type manifestEntry struct {
	Name    string            `json:"name"`
	Created time.Time         `json:"created"`
	Options CollectionOptions `json:"options"`
}

func manifestPath(walRoot string) string { return filepath.Join(walRoot, manifestName) }

// writeManifest atomically replaces the manifest with entries. The payload
// is JSON behind a fixed binary header — magic, version, length, CRC-32C —
// so a torn or bit-rotted file fails loudly at startup instead of silently
// recovering half a registry.
func writeManifest(path string, entries []manifestEntry) error {
	payload, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], manifestVersion)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, castagnoli))
	buf.Write(hdr[:])
	buf.Write(payload)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, manifestName+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// The rename must itself be durable before a create acks: fsync the
	// directory like the WAL does for its segment files.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// readManifest loads the manifest; a missing file is an empty registry (the
// first start under a fresh WAL root), a corrupt one is a hard error.
func readManifest(path string) ([]manifestEntry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < len(manifestMagic)+12 || string(raw[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("manifest %s: bad magic", path)
	}
	hdr := raw[len(manifestMagic):]
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != manifestVersion {
		return nil, fmt.Errorf("manifest %s: unsupported version %d", path, v)
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	sum := binary.LittleEndian.Uint32(hdr[8:12])
	payload := hdr[12:]
	if uint32(len(payload)) != n {
		return nil, fmt.Errorf("manifest %s: truncated payload (%d of %d bytes)", path, len(payload), n)
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, fmt.Errorf("manifest %s: checksum mismatch (file %08x, computed %08x)", path, sum, got)
	}
	var entries []manifestEntry
	if err := json.Unmarshal(payload, &entries); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	for _, e := range entries {
		if err := validateCollectionName(e.Name); err != nil {
			return nil, fmt.Errorf("manifest %s: %w", path, err)
		}
	}
	return entries, nil
}
