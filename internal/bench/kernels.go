package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"topk/internal/dataset"
	"topk/internal/invindex"
	"topk/internal/kernel"
	"topk/internal/ranking"
)

// KernelRecord is one machine-readable microbenchmark measurement of the
// distance-kernel layer (BENCH_kernels.json): the per-PR perf trajectory the
// CI regression gate (cmd/benchgate) diffs against the committed baseline.
type KernelRecord struct {
	Name        string `json:"name"`
	K           int    `json:"k"`
	N           int    `json:"n"`
	NsPerOp     int64  `json:"nsPerOp"`
	AllocsPerOp int64  `json:"allocsPerOp"`
}

// WriteKernelJSON writes records as indented JSON (the committed-baseline
// format).
func WriteKernelJSON(w io.Writer, recs []KernelRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// kernelSink defeats dead-code elimination of the measured distance loops.
var kernelSink int

// Kernels measures the hot paths of the distance layer on an NYT-like
// collection, by k and candidate-buffer size n:
//
//	footrule-scalar   one ranking.Footrule call (the pre-kernel path)
//	footrule-kernel   one compiled-kernel Distance call (compile amortized)
//	compile           one query compilation (dense rank table build)
//	validate-scalar   full n-candidate validation via per-candidate Footrule
//	validate-batched  the same buffer via Compile + FootruleMany on the flat
//	                  store — the acceptance-criteria comparison pair
//	collect           merging the query's k posting lists into a stamped
//	                  candidate buffer (the CSR-backed filter phase)
func Kernels(ks, ns []int) ([]KernelRecord, Table, error) {
	var recs []KernelRecord
	maxN := 0
	for _, n := range ns {
		if n > maxN {
			maxN = n
		}
	}
	for _, k := range ks {
		cfg := dataset.NYTLike(maxN, k)
		rs, err := dataset.Generate(cfg)
		if err != nil {
			return nil, Table{}, err
		}
		queries, err := dataset.Workload(rs, cfg, 16, 0.8, cfg.Seed+500)
		if err != nil {
			return nil, Table{}, err
		}
		st := kernel.NewStore(rs)

		scalar := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				kernelSink += ranking.Footrule(q, st.Slot(ranking.ID(i%maxN)))
			}
		})
		recs = append(recs, record(fmt.Sprintf("footrule-scalar/k=%d", k), k, maxN, scalar))

		kern := kernel.New()
		compiled := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			kern.Compile(queries[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%1024 == 0 {
					kern.Compile(queries[(i/1024)%len(queries)])
				}
				kernelSink += kern.Distance(st.Slot(ranking.ID(i % maxN)))
			}
		})
		recs = append(recs, record(fmt.Sprintf("footrule-kernel/k=%d", k), k, maxN, compiled))

		comp := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kern.Compile(queries[i%len(queries)])
			}
		})
		recs = append(recs, record(fmt.Sprintf("compile/k=%d", k), k, maxN, comp))

		for _, n := range ns {
			ids := make([]ranking.ID, n)
			for i := range ids {
				ids[i] = ranking.ID(i)
			}
			rawTheta := ranking.MaxDistance(k) / 4

			vScalar := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					hits := 0
					for _, id := range ids {
						if ranking.Footrule(q, st.Slot(id)) <= rawTheta {
							hits++
						}
					}
					kernelSink += hits
				}
			})
			recs = append(recs, record(fmt.Sprintf("validate-scalar/k=%d/n=%d", k, n), k, n, vScalar))

			dists := make([]int, 0, n)
			vBatched := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					kern.Compile(q)
					dists = kern.FootruleMany(st, ids, dists[:0])
					hits := 0
					for _, d := range dists {
						if d <= rawTheta {
							hits++
						}
					}
					kernelSink += hits
				}
			})
			recs = append(recs, record(fmt.Sprintf("validate-batched/k=%d/n=%d", k, n), k, n, vBatched))

			idx, err := invindex.New(rs[:n])
			if err != nil {
				return nil, Table{}, err
			}
			stamp := make([]uint32, n)
			gen := uint32(0)
			cands := make([]ranking.ID, 0, n)
			collect := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					gen++
					cands = cands[:0]
					for _, item := range q {
						for _, p := range idx.List(item) {
							if stamp[p.ID] != gen {
								stamp[p.ID] = gen
								cands = append(cands, p.ID)
							}
						}
					}
					kernelSink += len(cands)
				}
			})
			recs = append(recs, record(fmt.Sprintf("collect/k=%d/n=%d", k, n), k, n, collect))
		}
	}

	t := Table{
		Title:   "Distance-kernel microbenchmarks (NYT-like)",
		Columns: []string{"benchmark", "k", "n", "ns/op", "allocs/op"},
		Notes: []string{
			"validate-* rows measure one full n-candidate validation pass per op",
			"the CI gate compares ns/op against the committed BENCH_kernels.json",
		},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.K),
			fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%d", r.NsPerOp),
			fmt.Sprintf("%d", r.AllocsPerOp),
		})
	}
	return recs, t, nil
}

func record(name string, k, n int, r testing.BenchmarkResult) KernelRecord {
	return KernelRecord{
		Name:        name,
		K:           k,
		N:           n,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
