package shard

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers latencies from <1µs (bucket 0) up to ~32s; bucket b
// counts observations with ceil(log2(µs)) == b, i.e. exponentially growing
// upper bounds 1µs, 2µs, 4µs, … Observations beyond the last bound land in
// the final bucket.
const numBuckets = 26

// Histogram is a fixed-bucket, lock-free latency histogram. All methods are
// safe for concurrent use; Observe is two atomic adds on the hot path.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	maxNs   atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	us := uint64(d.Microseconds())
	if us <= 1 {
		return 0
	}
	b := bits.Len64(us - 1) // ceil(log2(us))
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket b in microseconds.
func BucketBound(b int) uint64 { return uint64(1) << uint(b) }

// Observe records one query latency.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d.Nanoseconds())
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[bucketFor(d)].Add(1)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram, with quantiles
// estimated by linear interpolation within the bucket containing the
// quantile rank. BucketBoundsMicros[i] is the inclusive upper bound (µs) of
// Buckets[i], so consumers need not hard-code the exponential 2^b µs
// scheme; the final bucket additionally absorbs every observation beyond
// the last bound.
type HistogramSnapshot struct {
	Count      uint64  `json:"count"`
	SumMicros  float64 `json:"sumMicros"`
	MeanMicros float64 `json:"meanMicros"`
	MaxMicros  float64 `json:"maxMicros"`
	P50Micros  float64 `json:"p50Micros"`
	P95Micros  float64 `json:"p95Micros"`
	P99Micros  float64 `json:"p99Micros"`
	// Buckets is the count per µs bucket; BucketBoundsMicros its upper
	// bounds, element for element.
	Buckets            []uint64 `json:"buckets,omitempty"`
	BucketBoundsMicros []uint64 `json:"bucketBoundsMicros,omitempty"`
}

// Snapshot copies the histogram's counters. Concurrent Observes may land
// between the individual loads; each counter is itself consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	if s.Count == 0 {
		return s
	}
	s.SumMicros = float64(h.sumNs.Load()) / 1e3
	s.MeanMicros = s.SumMicros / float64(s.Count)
	s.MaxMicros = float64(h.maxNs.Load()) / 1e3
	var bs [numBuckets]uint64
	var total uint64
	hi := 0
	for i := range bs {
		bs[i] = h.buckets[i].Load()
		total += bs[i]
		if bs[i] > 0 {
			hi = i
		}
	}
	s.Buckets = append([]uint64(nil), bs[:hi+1]...)
	s.BucketBoundsMicros = make([]uint64, hi+1)
	for i := range s.BucketBoundsMicros {
		s.BucketBoundsMicros[i] = BucketBound(i)
	}
	s.P50Micros = quantile(bs[:], total, 0.50)
	s.P95Micros = quantile(bs[:], total, 0.95)
	s.P99Micros = quantile(bs[:], total, 0.99)
	return s
}

// quantile estimates the q-quantile (µs) by locating the bucket holding
// rank q·total and interpolating linearly between its bounds — a bucket
// counting observations in (lo, hi] contributes evenly spread mass, so the
// estimate lands inside the bucket instead of always at its upper bound.
func quantile(bs []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range bs {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			hi := float64(BucketBound(i))
			lo := 0.0
			if i > 0 {
				lo = float64(BucketBound(i - 1))
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	return float64(BucketBound(len(bs) - 1))
}
