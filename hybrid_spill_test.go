package topk

import (
	"math/rand"
	"testing"

	"topk/internal/difftest"
)

// TestHybridSpillDifferential: an index whose epoch arena is spilled to an
// mmapped paged file must answer every query byte-identically to a heap
// index and to the oracle, across mutations and the epoch rebuilds they
// trigger.
func TestHybridSpillDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	rs := difftest.RandomCollection(rng, 800, 10, 400)
	o := difftest.NewOracle(rs)
	spilled := hybridFor(t, rs, WithHybridSpill(t.TempDir()))
	heap := hybridFor(t, rs)

	if spilled.SpillBytes() == 0 {
		t.Fatal("spill-enabled index reports 0 spill bytes")
	}
	if heap.SpillBytes() != 0 {
		t.Fatalf("heap index reports %d spill bytes", heap.SpillBytes())
	}

	difftest.CheckSearch(t, "hybrid(spilled)", spilled, o, rng, 40, 400)

	// Mutate both indexes identically; force enough churn for a rebuild, so
	// the next epoch spills again over the new live set.
	for i := 0; i < 400; i++ {
		switch c := rng.Intn(4); {
		case c < 2:
			r := difftest.RandomRanking(rng, o.K(), 400)
			id1, err1 := spilled.Insert(r)
			id2, err2 := heap.Insert(r)
			if err1 != nil || err2 != nil || id1 != id2 {
				t.Fatalf("insert diverged: (%v,%v) (%v,%v)", id1, err1, id2, err2)
			}
			o.Insert(r)
		case c == 2:
			ids := o.LiveIDs()
			if len(ids) <= 1 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if err1, err2 := spilled.Delete(id), heap.Delete(id); err1 != nil || err2 != nil {
				t.Fatalf("delete diverged: %v %v", err1, err2)
			}
			o.Delete(id)
		default:
			ids := o.LiveIDs()
			id := ids[rng.Intn(len(ids))]
			r := difftest.Perturb(rng, o.Slots()[id], 400)
			if err1, err2 := spilled.Update(id, r), heap.Update(id, r); err1 != nil || err2 != nil {
				t.Fatalf("update diverged: %v %v", err1, err2)
			}
			o.Update(id, r)
		}
	}
	if err := spilled.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := heap.Compact(); err != nil {
		t.Fatal(err)
	}
	difftest.CheckSearch(t, "hybrid(spilled,post-mutation)", spilled, o, rng, 40, 400)
	if spilled.Rebuilds() == 0 {
		t.Fatal("mutation burst triggered no epoch rebuild; the spill path was not re-exercised")
	}
	if spilled.SpillBytes() == 0 {
		t.Fatal("rebuilt epoch lost its spill backing")
	}
}

// TestHybridSpillBadDirFallsBack: an unusable spill directory must not fail
// index construction — the epoch silently stays on the heap.
func TestHybridSpillBadDirFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	rs := difftest.RandomCollection(rng, 100, 8, 100)
	h := hybridFor(t, rs, WithHybridSpill("/nonexistent/spill/dir"))
	if h.SpillBytes() != 0 {
		t.Fatalf("spill into a missing directory reports %d bytes", h.SpillBytes())
	}
	o := difftest.NewOracle(rs)
	difftest.CheckSearch(t, "hybrid(spill-fallback)", h, o, rng, 15, 100)
}
